"""Batched (lane-axis) trial execution — many seeded runs, one kernel pass.

Every statistic this reproduction reports is a rate over independently
seeded trials, and on a single core the only remaining speed lever is
amortizing per-block interpreter and kernel overhead across those trials.
This module is the protocol-layer half of that move (DESIGN.md section 6):

* :func:`_shared_coin_block` — the lane-batched block kernel for the
  shared-coin action rule (Figs. 1/2/5).  The iteration loop never consumes
  action or feedback *matrices* — only per-node listen/send/noise totals,
  the informing events, and the resulting statuses — and under the shared
  coin all of those are pure functions of the ~2pKn draws that clear the
  participation coin.  So the kernel extracts those participants once,
  resolves the "uninformed node heard m" cascade as a vectorized
  fixed-point over per-node informing rows, and reduces the counters in one
  sender-keyed pass — no ``resolve_block``, no ``(B, K, n)`` action/feedback
  materialization, one flat key space ``lane*K*C + slot*C + channel``.
* :func:`run_iterations_batch` — the lane-batched counterpart of the shared
  iteration loop used by ``MultiCastCore`` (Fig. 1), ``MultiCast`` (Fig. 2)
  and ``MultiCast(C)`` (Fig. 5): all protocols whose periods are iterations
  of R slots with a shared-coin action rule and a noisy-slot halting test.
  Lanes run the same iteration schedule in lockstep; a lane that halts (or
  overruns ``max_slots``) is masked out of subsequent blocks rather than
  blocking the batch.
* :func:`run_broadcast_batch` — the batch analogue of
  :func:`repro.core.result.run_broadcast`: build one
  :class:`repro.sim.engine.BatchNetwork` over per-lane seeds/adversaries and
  dispatch to the protocol's ``run_batch``.  Every shipped protocol has one
  (``MultiCastAdv``/``MultiCastAdvC`` batch through
  :mod:`repro.core.adv_batch`); a protocol without one (or a batch mixing
  reactive with oblivious adversaries) falls back to a per-lane loop behind
  the same interface — loudly: the fallback prints one stderr line and
  stamps ``extras["backend"] = "scalar-fallback"`` on each lane that ran
  the scalar block engine, so campaign logs and stores show which cells
  didn't batch.

Determinism contract (enforced by ``tests/core/test_batch_equivalence.py``):
lane ``l`` is **bit-identical** to the scalar execution with the same
``(seed, adversary)`` — same slots, statuses, event slots, energy books and
extras — because each lane draws from its own generator in the same order,
and the kernel computes exactly the quantities the scalar resolver would
(section 6 of DESIGN.md walks through the argument).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import BroadcastResult, run_broadcast
from repro.obs.recorder import active as _obs_active
from repro.sim.engine import BatchNetwork
from repro.sim.jam import JamBlock

__all__ = [
    "run_broadcast_batch",
    "run_broadcast_stream",
    "run_iterations_batch",
    "run_iterations_stream",
    "LaneStream",
    "FallbackNotes",
    "collect_fallback_notes",
]

#: ``schedule(i) -> (R, p, threshold)``: iteration i's length, listen
#: probability and halting threshold (halt iff noisy-slot count < threshold).
IterationSchedule = Callable[[int], Tuple[int, float, float]]


def _shared_coin_ragged(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    offsets: np.ndarray,
    p: np.ndarray,
    informed: np.ndarray,
    active: np.ndarray,
    *,
    slot0: np.ndarray,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one *ragged* block of every lane under the shared-coin rule,
    returning ``(listen_counts, send_counts, noise_counts, informed)``.

    Inputs are lane-major concatenations: ``channels``/``coins`` are
    ``(T, n)`` with lane ``l`` owning rows ``offsets[l]:offsets[l+1]``
    (``T = offsets[-1]``; row counts may differ per lane — the continuous
    batching driver merges lanes at different schedule points into one
    pass), ``p`` is one listen probability per lane,
    ``informed``/``active``/``informed_slot`` are ``(L, n)`` (the latter
    updated in place with event slots), ``jam`` is the lanes' stacked
    :class:`~repro.sim.jam.JamBlock` of ``T`` rows in the same lane order
    (one uniform channel count), and ``slot0`` holds each lane's global
    slot of row 0.

    The computation is exact — bit-identical to building the action matrix,
    calling :func:`repro.sim.channel.resolve_block` and reducing, per lane —
    but touches only the draws that clear the participation coin:

    1.  **Participants.**  A node acts iff its coin < 2p (listen below p,
        broadcast — when informed — in [p, 2p)); everything below works on
        the ``(lane, row, node)`` triples of those hits.  Listen energy is
        status-independent and counted immediately.
    2.  **Event cascade.**  Whether a broadcast-coin hit is a real broadcast
        depends on when its node learned ``m``, captured as a per-node
        *informing row* (-1 = knew at block entry, K = not yet).  An
        uninformed listener hears ``m`` iff its (row, channel) cell has
        exactly one current broadcaster and no jamming, and the earliest
        such row per lane is that lane's next event — which adds
        broadcasters at later rows only, so iterating "detect earliest event
        per lane -> record informing rows -> re-detect past it" reaches the
        same fixed point the scalar tail re-resolution loop does, with every
        lane advancing per pass.
    3.  **Counters.**  With informing rows final, a broadcast-coin hit is a
        send iff its row is later than its node's informing row, and a
        listen is noisy iff its cell is jammed or holds >= 2 such sends —
        one sorted-key count plus one lookup over the listen hits.
    """
    T, n = coins.shape
    L = offsets.size - 1
    lane_rows = np.diff(offsets)
    lane_of_row = np.repeat(np.arange(L, dtype=np.int64), lane_rows)
    C = jam.C
    thr = (2.0 * p)[lane_of_row][:, None]
    if active.all():  # nobody has halted yet — the common early-run case
        hit = coins < thr
    else:
        hit = (coins < thr) & active[lane_of_row]
    # One flat extraction pass; the raveled gathers below walk memory in
    # increasing order, which matters more than it looks at these sizes.
    flat = np.flatnonzero(hit)
    grow = flat // n  # global (concatenated) row
    node = flat % n
    lane = lane_of_row[grow]
    row = grow - offsets[lane]  # lane-local row — scalar-stream position
    is_listen = coins.ravel()[flat] < p[lane]
    node_key = lane * n + node
    cell = grow * np.int64(C) + channels.ravel()[flat]
    listen_counts = np.bincount(node_key[is_listen], minlength=L * n).reshape(L, n)
    # Jamming at listen cells, once for the whole block (binary search in the
    # stacked block's key space).
    jam_at = np.zeros(lane.shape[0], dtype=bool)
    jam_at[is_listen] = jam.lookup_keys(cell[is_listen])

    # sentinel informing row: not informed in this block.  One sentinel past
    # every lane's last local row works for all lanes (rows < lane_rows[l]).
    NEVER = np.int64(lane_rows.max())
    informing_row = np.where(informed, np.int64(-1), NEVER)  # (L, n)

    def sends_now():
        return ~is_listen & (row > informing_row[lane, node])

    def broadcasters_at(query_cells: np.ndarray, send_mask: np.ndarray) -> np.ndarray:
        """Current broadcaster count at each queried cell."""
        send_cells = np.sort(cell[send_mask])
        if not send_cells.size:
            return np.zeros(query_cells.shape[0], dtype=np.int64)
        lo = np.searchsorted(send_cells, query_cells, side="left")
        hi = np.searchsorted(send_cells, query_cells, side="right")
        return hi - lo

    frontier = np.full(L, -1, dtype=np.int64)  # rows <= frontier are settled
    while True:
        informing_at_hit = informing_row[lane, node]
        learners = (
            is_listen & (informing_at_hit == NEVER) & (row > frontier[lane])
        )
        if not learners.any():
            break
        sends = ~is_listen & (row > informing_at_hit)
        count = broadcasters_at(cell[learners], sends)
        heard = (count == 1) & ~jam_at[learners]
        if not heard.any():
            break
        learner_idx = np.nonzero(learners)[0]
        heard_idx = learner_idx[heard]
        heard_lane = lane[heard_idx]
        heard_row = row[heard_idx]
        heard_node = node[heard_idx]
        # Optimistic acceptance.  A hearing is *cell-safe* — no
        # later-resolved event can flip its own cell — iff no
        # still-uninformed node holds a broadcast coin on it: those are the
        # only broadcasts the cascade can still add (or, by collision,
        # remove).  That is not sufficient on its own: the *same node* may
        # have an earlier listen that is still volatile (pending hearing,
        # or a cell a future broadcast could turn into one), and the node
        # must inform at its earliest hearing — so a cell-safe hearing is
        # accepted only when it is the node's earliest volatile listen.
        # The earliest hearing per lane is additionally always definitive
        # (np.nonzero order is (lane, row, node)-sorted, so the first index
        # per lane is its earliest row): events only add broadcasts at rows
        # past the informing row, and no event precedes the earliest
        # hearing.  Accepted events therefore cannot interfere with one
        # another, and a typical block settles in a couple of passes
        # instead of one per event row.
        potential = np.sort(cell[~is_listen & (informing_at_hit == NEVER)])
        learner_cells = cell[learner_idx]
        exposed = (
            np.searchsorted(potential, learner_cells, side="right")
            - np.searchsorted(potential, learner_cells, side="left")
        ) > 0
        cell_safe = ~exposed[heard]
        # first volatile listen row, computed only for the nodes that have a
        # cell-safe hearing to validate (np.minimum.at is an unbuffered
        # per-element loop; keep its input tiny)
        candidate_keys = np.unique(
            heard_lane[cell_safe] * n + heard_node[cell_safe]
        )
        volatile = exposed | heard
        vol_idx = learner_idx[volatile]
        vol_keys = lane[vol_idx] * n + node[vol_idx]
        relevant = vol_idx[
            vol_keys == candidate_keys[
                np.minimum(
                    np.searchsorted(candidate_keys, vol_keys),
                    max(0, candidate_keys.size - 1),
                )
            ]
        ] if candidate_keys.size else vol_idx[:0]
        first_volatile = np.full((L, n), NEVER, dtype=np.int64)
        np.minimum.at(
            first_volatile, (lane[relevant], node[relevant]), row[relevant]
        )
        safe = cell_safe & (heard_row == first_volatile[heard_lane, heard_node])
        event_lanes, first = np.unique(heard_lane, return_index=True)
        first_row = np.full(L, NEVER, dtype=np.int64)
        first_row[event_lanes] = heard_row[first]
        definitive = safe | (heard_row == first_row[heard_lane])
        ev_lane = heard_lane[definitive]
        ev_row = heard_row[definitive]
        ev_node = heard_node[definitive]
        # A node can still carry two accepted hearings (lane-first plus a
        # later cell-safe one); it informs at the earliest, hence minimum
        # rather than last-write-wins.
        np.minimum.at(informing_row, (ev_lane, ev_node), ev_row)
        # New broadcasts appear only at rows past this pass's earliest
        # hearing, so nothing below it can still change.
        frontier[event_lanes] = heard_row[first]

    if informed_slot is not None:
        new_lane, new_node = np.nonzero((informing_row >= 0) & (informing_row < NEVER))
        informed_slot[new_lane, new_node] = (
            slot0[new_lane] + informing_row[new_lane, new_node] * slot_scale
        )

    sends = sends_now()
    send_counts = np.bincount(node_key[sends], minlength=L * n).reshape(L, n)
    count = broadcasters_at(cell[is_listen], sends)
    noisy = jam_at[is_listen] | (count >= 2)
    noise_counts = np.bincount(
        node_key[is_listen][noisy], minlength=L * n
    ).reshape(L, n)
    return listen_counts, send_counts, noise_counts, informing_row < NEVER


def _shared_coin_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
    *,
    slot0: np.ndarray,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fixed-shape adapter over :func:`_shared_coin_ragged` — the lockstep
    driver's view: ``channels``/``coins`` are ``(L, K, n)`` (every lane at
    the same schedule point, so every lane contributes K rows and shares one
    listen probability).  The reshape is a view; the ragged core is the
    single implementation of the event cascade."""
    L, K, n = coins.shape
    offsets = np.arange(L + 1, dtype=np.int64) * K
    return _shared_coin_ragged(
        channels.reshape(L * K, n),
        coins.reshape(L * K, n),
        jam,
        offsets,
        np.full(L, p, dtype=np.float64),
        informed,
        active,
        slot0=slot0,
        slot_scale=slot_scale,
        informed_slot=informed_slot,
    )


def run_iterations_batch(
    proto,
    bnet: BatchNetwork,
    *,
    first_index: int,
    schedule: IterationSchedule,
    make_extras: Callable[[int], dict],
    slots_per_row: int = 1,
    draw_jamming=None,
    count_at_entry: bool = False,
) -> List[BroadcastResult]:
    """Run the shared iteration loop for every lane of ``bnet`` in lockstep.

    Mirrors ``repro.core.multicast._run_multicast_iterations`` lane-by-lane:
    while a lane still has active nodes it keeps entering iterations, and
    since every lane starts at ``first_index`` all live lanes are always on
    the *same* iteration — so they share R, p and the block structure, and
    the whole batch advances through one sequence of draw/resolve/commit
    calls, with each block resolved by :func:`_shared_coin_block`.
    ``proto`` supplies ``n``, ``num_channels``, ``block_slots``,
    ``max_iterations`` and ``name``; ``make_extras(lane_iterations)`` builds
    the per-lane extras dict.

    ``draw_jamming(lane_ids, rows)`` may override the jam source (the Fig. 5
    physical-to-virtual relabeling); the default draws on
    ``proto.num_channels`` directly.

    ``count_at_entry`` mirrors a bookkeeping difference between the scalar
    runners: ``MultiCastCore`` increments its iteration counter on *entering*
    an iteration (so a lane truncated mid-iteration reports the partial one
    in ``periods``), ``MultiCast`` on completing it.
    """
    n = proto.n
    C = proto.num_channels
    if bnet.n != n:
        raise ValueError(f"batch network has n={bnet.n}, protocol built for n={n}")
    if draw_jamming is None:
        draw_jamming = lambda lane_ids, rows: bnet.draw_jamming(lane_ids, rows, C)  # noqa: E731

    B = bnet.B
    informed = np.zeros((B, n), dtype=bool)
    informed[:, 0] = True
    active = np.ones((B, n), dtype=bool)
    informed_slot = np.full((B, n), -1, dtype=np.int64)
    informed_slot[:, 0] = 0
    halt_slot = np.full((B, n), -1, dtype=np.int64)
    halted_uninformed = np.zeros(B, dtype=np.int64)
    completed = np.ones(B, dtype=bool)
    iterations_run = np.zeros(B, dtype=np.int64)
    live = np.ones(B, dtype=bool)
    i = first_index
    tel = _obs_active()

    while live.any():
        if proto.max_iterations is not None and int(iterations_run[live].max()) >= proto.max_iterations:
            completed[live] = False
            break
        R, p, threshold = schedule(i)
        noisy = np.zeros((B, n), dtype=np.int64)
        lane_ids = np.nonzero(live)[0]
        remaining = R
        while remaining > 0 and lane_ids.size:
            K = min(proto.block_slots, remaining)
            channels = bnet.draw_channels(lane_ids, K, C)
            coins = bnet.draw_coins(lane_ids, K)
            jam = draw_jamming(lane_ids, K)
            sub_slot = informed_slot[lane_ids]
            if tel is not None:
                t0 = time.perf_counter()
            listen_counts, send_counts, block_noise, new_informed = _shared_coin_block(
                channels,
                coins,
                jam,
                informed[lane_ids],
                active[lane_ids],
                p,
                slot0=bnet.clocks[lane_ids],
                slot_scale=slots_per_row,
                informed_slot=sub_slot,
            )
            if tel is not None:
                tel.add_time("batch.kernel_s", time.perf_counter() - t0)
                tel.count("batch.kernel_passes")
                tel.count("batch.lane_rows", int(lane_ids.size) * K)
                tel.observe("batch.occupancy", int(lane_ids.size))
                tel.count("batch.lane_passes", int(lane_ids.size))
                tel.count("batch.idle_lane_passes", B - int(lane_ids.size))
                if lane_ids.size == 1 and B > 1:
                    # slots simulated with the batch drained to one lane —
                    # the straggler tail continuous batching removes
                    tel.count("batch.solo_slots", K * slots_per_row)
            overrun = bnet.commit_counts(
                lane_ids, listen_counts, send_counts, K, slots_per_row=slots_per_row
            )
            # informed_slot is adopted even for a lane whose commit overran
            # (the scalar path raises *after* the event loop's in-place
            # update); informed/noisy updates belong to survivors only,
            # matching where the scalar exception lands.
            informed_slot[lane_ids] = sub_slot
            if overrun.any():
                dead = lane_ids[overrun]
                completed[dead] = False
                live[dead] = False
                if count_at_entry:  # the partial iteration counts (Fig. 1)
                    iterations_run[dead] += 1
                lane_ids = lane_ids[~overrun]
                new_informed = new_informed[~overrun]
                block_noise = block_noise[~overrun]
            informed[lane_ids] = new_informed
            noisy[lane_ids] += block_noise
            remaining -= K
        if lane_ids.size:
            halt_now = active[lane_ids] & (noisy[lane_ids] < threshold)  # (L, n)
            halted_uninformed[lane_ids] += (halt_now & ~informed[lane_ids]).sum(axis=1)
            lane_halt = halt_slot[lane_ids]
            lane_clocks = bnet.clocks[lane_ids]
            lane_halt[halt_now] = np.broadcast_to(lane_clocks[:, None], lane_halt.shape)[halt_now]
            halt_slot[lane_ids] = lane_halt
            active[lane_ids] &= ~halt_now
            iterations_run[lane_ids] += 1
            finished = ~active[lane_ids].any(axis=1)
            live[lane_ids[finished]] = False
        i += 1

    if tel is not None:
        if B > 1:
            # straggler wait: slots the slowest lane ran past the second-
            # slowest — per-pass occupancy says *when* lanes drop out, this
            # says how much tail one lane adds to the whole batch
            clocks = np.sort(bnet.clocks)
            tel.count("batch.straggler_slots", int(clocks[-1] - clocks[-2]))
        # lanes/batches are counted even for B == 1 so the occupancy
        # invariant (every trial lands in exactly one lane counter) holds
        # at any width — see tests/obs/test_occupancy.py
        tel.count("batch.batches")
        tel.count("batch.lanes", B)

    return [
        BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[lane]),
            completed=bool(completed[lane]) and not active[lane].any(),
            informed_slot=informed_slot[lane].copy(),
            halt_slot=halt_slot[lane].copy(),
            node_energy=bnet.energy.lane_node_cost(lane),
            adversary_spend=bnet.energy.lane_adversary_spend(lane),
            halted_uninformed=int(halted_uninformed[lane]),
            periods=int(iterations_run[lane]),
            extras=make_extras(int(iterations_run[lane])),
        )
        for lane in range(B)
    ]


class LaneStream:
    """``W`` reusable lane slots streaming over a pending trial queue.

    The continuous-batching host (DESIGN.md section 13): the first ``W``
    trials are admitted as the lanes of one :class:`BatchNetwork`; when a
    protocol driver retires a lane (halted, truncated, or out of epochs) it
    deposits the result with :meth:`finish` and calls :meth:`refill`, which
    recycles the slot for the next pending trial via
    :meth:`BatchNetwork.replace_lane` — fresh generator, reset adversary,
    zeroed books.  Results land in trial order regardless of which slot
    hosted which trial or when.

    Trials are ``(seed, adversary, max_slots)`` triples; per-trial slot caps
    are first-class because staggered caps are exactly the workload
    compaction exists for (budget-truncated campaign cells).
    """

    def __init__(self, n: int, seeds, adversaries, max_slots, width: int):
        self.trials = list(zip(seeds, adversaries, max_slots))
        if not self.trials:
            raise ValueError("need at least one trial")
        self.width = max(1, min(int(width), len(self.trials)))
        head = self.trials[: self.width]
        for _, adversary, _ in head:
            if adversary is not None:
                adversary.reset()
        self.bnet = BatchNetwork(
            n,
            [seed for seed, _, _ in head],
            [adversary for _, adversary, _ in head],
            max_slots=np.asarray([cap for _, _, cap in head], dtype=np.int64),
        )
        self._slot_trial = list(range(self.width))
        self.next_trial = self.width
        self.results: List[Optional[BroadcastResult]] = [None] * len(self.trials)
        self.refills = 0

    def finish(self, slot: int, result: BroadcastResult) -> None:
        """Deposit the result of the trial currently hosted by ``slot``."""
        trial = self._slot_trial[slot]
        if self.results[trial] is not None:
            raise RuntimeError(f"trial {trial} finished twice")
        self.results[trial] = result

    def refill(self, slot: int) -> bool:
        """Recycle ``slot`` for the next pending trial; False when drained."""
        if self.next_trial >= len(self.trials):
            return False
        seed, adversary, cap = self.trials[self.next_trial]
        self.bnet.replace_lane(slot, seed, adversary, max_slots=cap)
        self._slot_trial[slot] = self.next_trial
        self.next_trial += 1
        self.refills += 1
        return True


def run_iterations_stream(
    proto,
    stream: LaneStream,
    *,
    first_index: int,
    schedule: IterationSchedule,
    make_extras: Callable[[int], dict],
    slots_per_row: int = 1,
    draw_jamming=None,
    count_at_entry: bool = False,
) -> List[BroadcastResult]:
    """Continuous-batching counterpart of :func:`run_iterations_batch`.

    Same per-trial semantics, different scheduling: lane slots are *not* in
    lockstep.  Each slot carries its own iteration index, schedule constants
    and remaining-row count; every pass merges all occupied slots — wherever
    they are in their schedules — into one ragged kernel call (per-lane row
    counts and listen probabilities), and a slot that finishes its trial is
    refilled from the stream's pending queue instead of idling until the
    batch drains.  Trial results are bit-identical to the lockstep (and
    scalar) paths because a lane's draws, and everything derived from them,
    are functions of its own generator only — the schedule-invariance suite
    (``tests/core/test_lane_schedule_invariance.py``) enforces exactly that.

    ``draw_jamming(lane_ids, rows)`` may override the jam source with a
    ragged drawer returning one stacked uniform-C :class:`JamBlock` (the
    Fig. 5 physical-to-virtual relabeling); the default stacks
    :meth:`BatchNetwork.draw_jamming_ragged` on ``proto.num_channels``.
    """
    n = proto.n
    C = proto.num_channels
    bnet = stream.bnet
    if bnet.n != n:
        raise ValueError(f"batch network has n={bnet.n}, protocol built for n={n}")
    if draw_jamming is None:
        draw_jamming = lambda lane_ids, rows: JamBlock.stack(  # noqa: E731
            bnet.draw_jamming_ragged(lane_ids, rows, C)
        )

    W = stream.width
    informed = np.zeros((W, n), dtype=bool)
    informed[:, 0] = True
    active = np.ones((W, n), dtype=bool)
    informed_slot = np.full((W, n), -1, dtype=np.int64)
    informed_slot[:, 0] = 0
    halt_slot = np.full((W, n), -1, dtype=np.int64)
    halted_uninformed = np.zeros(W, dtype=np.int64)
    completed = np.ones(W, dtype=bool)
    iterations_run = np.zeros(W, dtype=np.int64)
    iter_index = np.full(W, first_index, dtype=np.int64)
    R_arr = np.zeros(W, dtype=np.int64)
    p_arr = np.zeros(W, dtype=np.float64)
    thr_arr = np.zeros(W, dtype=np.float64)
    remaining = np.zeros(W, dtype=np.int64)
    noisy = np.zeros((W, n), dtype=np.int64)
    occupied = np.ones(W, dtype=bool)
    tel = _obs_active()

    def enter_iteration(slot: int) -> None:
        R, p, threshold = schedule(int(iter_index[slot]))
        R_arr[slot] = R
        p_arr[slot] = p
        thr_arr[slot] = threshold
        remaining[slot] = R
        noisy[slot] = 0

    def slot_result(slot: int) -> BroadcastResult:
        return BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[slot]),
            completed=bool(completed[slot]) and not active[slot].any(),
            informed_slot=informed_slot[slot].copy(),
            halt_slot=halt_slot[slot].copy(),
            node_energy=bnet.energy.lane_node_cost(slot),
            adversary_spend=bnet.energy.lane_adversary_spend(slot),
            halted_uninformed=int(halted_uninformed[slot]),
            periods=int(iterations_run[slot]),
            extras=make_extras(int(iterations_run[slot])),
        )

    def reset_slot(slot: int) -> None:
        informed[slot] = False
        informed[slot, 0] = True
        active[slot] = True
        informed_slot[slot] = -1
        informed_slot[slot, 0] = 0
        halt_slot[slot] = -1
        halted_uninformed[slot] = 0
        completed[slot] = True
        iterations_run[slot] = 0
        iter_index[slot] = first_index
        enter_iteration(slot)

    def retire(slot: int) -> None:
        while True:
            stream.finish(slot, slot_result(slot))
            if tel is not None:
                tel.count("batch.lanes")
            if not stream.refill(slot):
                occupied[slot] = False
                return
            reset_slot(slot)
            if proto.max_iterations is not None and proto.max_iterations <= 0:
                # the lockstep driver's top-of-loop check fires before the
                # first iteration of such a (degenerate) schedule
                completed[slot] = False
                continue
            return

    for slot in range(W):
        enter_iteration(slot)
    if proto.max_iterations is not None and proto.max_iterations <= 0:
        for slot in range(W):
            completed[slot] = False
            retire(slot)

    while occupied.any():
        lane_ids = np.nonzero(occupied)[0]
        Ks = np.minimum(proto.block_slots, remaining[lane_ids])
        channels = bnet.draw_channels_ragged(lane_ids, Ks, C)
        coins = bnet.draw_coins_ragged(lane_ids, Ks)
        jam = draw_jamming(lane_ids, Ks)
        offsets = np.concatenate(([0], np.cumsum(Ks)))
        sub_slot = informed_slot[lane_ids]
        if tel is not None:
            t0 = time.perf_counter()
        listen_counts, send_counts, block_noise, new_informed = _shared_coin_ragged(
            channels,
            coins,
            jam,
            offsets,
            p_arr[lane_ids],
            informed[lane_ids],
            active[lane_ids],
            slot0=bnet.clocks[lane_ids],
            slot_scale=slots_per_row,
            informed_slot=sub_slot,
        )
        if tel is not None:
            tel.add_time("batch.kernel_s", time.perf_counter() - t0)
            tel.count("batch.kernel_passes")
            tel.count("batch.lane_rows", int(Ks.sum()))
            tel.observe("batch.occupancy", int(lane_ids.size))
            tel.count("batch.lane_passes", int(lane_ids.size))
            tel.count("batch.idle_lane_passes", W - int(lane_ids.size))
            if lane_ids.size == 1 and W > 1:
                tel.count("batch.solo_slots", int(Ks[0]) * slots_per_row)
        overrun = bnet.commit_counts_ragged(
            lane_ids, listen_counts, send_counts, Ks, slots_per_row=slots_per_row
        )
        # informed_slot is adopted even for a lane whose commit overran (the
        # scalar path raises *after* the event loop's in-place update);
        # informed/noisy updates belong to survivors only — same contract as
        # the lockstep driver.
        informed_slot[lane_ids] = sub_slot
        for idx, slot in enumerate(lane_ids):
            if overrun[idx]:
                completed[slot] = False
                if count_at_entry:  # the partial iteration counts (Fig. 1)
                    iterations_run[slot] += 1
                retire(slot)
                continue
            informed[slot] = new_informed[idx]
            noisy[slot] += block_noise[idx]
            remaining[slot] -= Ks[idx]
            if remaining[slot] == 0:
                # end of this slot's iteration: halting test on its own
                # threshold, then advance, retire, or refill
                halt_now = active[slot] & (noisy[slot] < thr_arr[slot])
                halted_uninformed[slot] += int((halt_now & ~informed[slot]).sum())
                halt_slot[slot][halt_now] = bnet.clocks[slot]
                active[slot] &= ~halt_now
                iterations_run[slot] += 1
                if not active[slot].any():
                    retire(slot)
                elif (
                    proto.max_iterations is not None
                    and iterations_run[slot] >= proto.max_iterations
                ):
                    completed[slot] = False
                    retire(slot)
                else:
                    iter_index[slot] += 1
                    enter_iteration(slot)

    if tel is not None:
        tel.count("batch.batches")
        tel.count("batch.refills", stream.refills)
    return list(stream.results)


class FallbackNotes:
    """Campaign-scoped tally of scalar-fallback lanes, keyed by cause.

    A long campaign can push thousands of lane blocks through
    :func:`run_broadcast_batch`; if its protocol cannot batch, a per-call
    stderr line turns the log into noise (once per kernel pass, not once per
    campaign).  Inside a :func:`collect_fallback_notes` scope the calls
    stay silent and the notes accumulate here; the campaign runner emits one
    summary line per (protocol, reason) at the end.  Counts survive process
    boundaries as plain dicts (:meth:`snapshot` / :meth:`merge`), which is
    how sharded workers report theirs back to the parent.
    """

    def __init__(self):
        #: (protocol name, reason) -> [lanes, kernel passes]
        self.counts: Dict[Tuple[str, str], List[int]] = {}

    def add(self, name: str, reason: str, lanes: int, passes: int = 1) -> None:
        entry = self.counts.setdefault((name, reason), [0, 0])
        entry[0] += lanes
        entry[1] += passes

    def snapshot(self) -> Dict[Tuple[str, str], List[int]]:
        """A picklable copy of the tally (worker -> parent transport)."""
        return {key: list(value) for key, value in self.counts.items()}

    def merge(self, counts: Dict[Tuple[str, str], List[int]]) -> None:
        for (name, reason), (lanes, passes) in counts.items():
            self.add(name, reason, lanes, passes)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def summary_lines(self) -> List[str]:
        """One line per cause, in first-seen order."""
        return [
            f"run_broadcast_batch: {name} {reason} — {lanes} lane(s) in "
            f"{passes} kernel pass(es) ran on the scalar fallback"
            for (name, reason), (lanes, passes) in self.counts.items()
        ]

    def emit(self, stream=None) -> None:
        for line in self.summary_lines():
            print(line, file=stream if stream is not None else sys.stderr)


#: The active collector, if any (installed by collect_fallback_notes).
_FALLBACK_NOTES: Optional[FallbackNotes] = None


@contextmanager
def collect_fallback_notes():
    """Collect scalar-fallback warnings instead of printing them per call.

    Yields the :class:`FallbackNotes`; nests by shadowing (the innermost
    scope collects).  The campaign runner wraps each run in one of these and
    emits the summary once, which is the "one warning per campaign, not one
    per lane pass" contract ``tests/exp/test_fallback_notes.py`` pins.
    """
    global _FALLBACK_NOTES
    previous = _FALLBACK_NOTES
    notes = FallbackNotes()
    _FALLBACK_NOTES = notes
    try:
        yield notes
    finally:
        _FALLBACK_NOTES = previous


def _note_fallback(protocol, reason: str, lanes: int) -> None:
    """Record a scalar fallback: collected note inside a campaign scope,
    one stderr line otherwise — plus a telemetry counter when recording."""
    name = getattr(protocol, "name", type(protocol).__name__)
    if _FALLBACK_NOTES is not None:
        _FALLBACK_NOTES.add(name, reason, lanes)
    else:
        print(
            f"run_broadcast_batch: {name} {reason} — "
            f"{lanes} lane(s) ran on the scalar fallback",
            file=sys.stderr,
        )
    tel = _obs_active()
    if tel is not None:
        tel.count("batch.fallback_lanes", lanes)


def _lane_caps(max_slots, count: int) -> np.ndarray:
    """Normalize a scalar-or-per-lane ``max_slots`` to a ``(count,)`` array."""
    caps = np.asarray(max_slots, dtype=np.int64)
    if caps.ndim == 0:
        return np.full(count, int(caps), dtype=np.int64)
    if caps.shape != (count,):
        raise ValueError(
            f"max_slots shaped {caps.shape}, expected a scalar or ({count},)"
        )
    return caps.copy()


def run_broadcast_batch(
    protocol,
    n: int,
    adversaries: Optional[Sequence] = None,
    seeds: Sequence[int] = (0,),
    *,
    max_slots=50_000_000,
    trace=None,
) -> List[BroadcastResult]:
    """Run one execution per lane — ``len(seeds)`` trials in one batch.

    The batch analogue of :func:`repro.core.result.run_broadcast`: lane ``l``
    runs ``protocol`` against ``adversaries[l]`` (reset first) under seed
    ``seeds[l]``, and the returned list matches what ``B`` scalar
    ``run_broadcast`` calls would produce, result for result.

    Protocols advertise batch support with a ``run_batch(bnet)`` method —
    every shipped protocol has one (``MultiCastAdv``/``MultiCastAdvC``
    through :mod:`repro.core.adv_batch`).  A protocol without one — and any
    batch mixing reactive with oblivious adversaries — falls back to a
    per-lane loop behind the same interface, but not silently: every lane
    that actually ran the scalar block engine gets
    ``extras["backend"] = "scalar-fallback"`` and one stderr line counts
    them, so campaign logs and stores show which cells didn't batch.
    (Lanes with *reactive* adversaries are different — they dispatch to the
    vectorized arena runtime by design and are neither warned about nor
    stamped.)

    ``trace=`` (a :class:`~repro.core.trace.TraceRecorder`) is honored only
    by the scalar engine: a one-lane batch falls back scalar with a
    FallbackNote, and a multi-lane batch raises — a trace records one
    execution, so silently attaching it to lane 0 of a batch (or dropping
    it, as batched/windowed dispatch used to) would misreport what ran.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one lane (seed)")
    if adversaries is None:
        adversaries = [None] * len(seeds)
    adversaries = list(adversaries)
    if len(adversaries) != len(seeds):
        raise ValueError(
            f"{len(adversaries)} adversaries for {len(seeds)} seeds (need one per lane)"
        )
    caps = _lane_caps(max_slots, len(seeds))
    if trace is not None:
        if len(seeds) > 1:
            raise ValueError(
                "trace recording is scalar-only: run_broadcast_batch got "
                f"trace= with {len(seeds)} lanes — record one lane per "
                "trace, or drop trace= to run batched"
            )
        result = run_broadcast(
            protocol, n, adversaries[0], seed=seeds[0], max_slots=int(caps[0]),
            trace=trace,
        )
        result.extras["backend"] = "scalar-fallback"
        _note_fallback(protocol, "trace= forces the scalar path", 1)
        return [result]
    if adversaries and all(
        adversary is not None
        and hasattr(adversary, "jam_slot")
        and (getattr(adversary, "window_latency", None) or 0) >= 1
        for adversary in adversaries
    ):
        # an all-reactive batch whose every jammer senses with latency >= 1:
        # the arena's windowed lane driver hosts the whole batch in lockstep
        # (bit-identical to the per-lane arena dispatch below, ~10x faster)
        from repro.arena.run import run_broadcast_windowed_batch, supports_protocol

        if supports_protocol(protocol):
            if np.unique(caps).size == 1:
                return run_broadcast_windowed_batch(
                    protocol, n, adversaries, seeds, max_slots=int(caps[0])
                )
            # heterogeneous per-lane caps: the windowed driver takes one cap
            # per batch, so group lanes by cap (grouping cannot change any
            # lane's result — the windowed driver carries the same per-lane
            # determinism contract)
            results = [None] * len(seeds)
            for cap in dict.fromkeys(caps.tolist()):
                idx = [k for k, c in enumerate(caps.tolist()) if c == cap]
                sub = run_broadcast_windowed_batch(
                    protocol,
                    n,
                    [adversaries[k] for k in idx],
                    [seeds[k] for k in idx],
                    max_slots=int(cap),
                )
                for k, r in zip(idx, sub):
                    results[k] = r
            return results
    has_run_batch = hasattr(protocol, "run_batch")
    if not has_run_batch or any(
        hasattr(adversary, "jam_slot") for adversary in adversaries
    ):
        # reactive (adaptive) adversaries cannot run on the oblivious block
        # engine; run_broadcast dispatches those lanes to the arena runtime
        results = []
        fallbacks = 0
        for adversary, seed, cap in zip(adversaries, seeds, caps):
            result = run_broadcast(protocol, n, adversary, seed=seed, max_slots=int(cap))
            if not hasattr(adversary, "jam_slot"):
                # this lane ran the scalar block engine (reactive lanes run
                # the vectorized arena by design and are not stamped)
                result.extras["backend"] = "scalar-fallback"
                fallbacks += 1
            results.append(result)
        if fallbacks:
            _note_fallback(
                protocol,
                "has no run_batch"
                if not has_run_batch
                else "split a mixed reactive/oblivious batch",
                fallbacks,
            )
        return results
    for adversary in adversaries:
        if adversary is not None:
            adversary.reset()
    bnet = BatchNetwork(n, seeds, adversaries, max_slots=caps)
    return protocol.run_batch(bnet)


def run_broadcast_stream(
    protocol,
    n: int,
    adversaries: Optional[Sequence] = None,
    seeds: Sequence[int] = (0,),
    *,
    max_slots=50_000_000,
    lane_width: Optional[int] = None,
    trace=None,
) -> List[BroadcastResult]:
    """Run ``len(seeds)`` trials through ``lane_width`` continuously-refilled
    lane slots — the compaction/refill analogue of :func:`run_broadcast_batch`.

    Where the fixed-lane path chops the trial list into width-sized blocks
    and runs each block to its slowest lane, this one keeps exactly
    ``lane_width`` slots busy: a slot whose trial retires (halts, truncates
    at its own ``max_slots``, or runs out of epochs) is immediately refilled
    from the pending queue.  ``max_slots`` may be a scalar or one cap per
    trial.  Results are bit-identical per trial to the fixed-lane and scalar
    paths — a trial's result is a pure function of its (seed, adversary,
    cap), never of lane placement, width, or refill schedule
    (``tests/core/test_lane_schedule_invariance.py``).

    Protocols advertise stream support with ``run_stream(stream)``; a
    protocol without one — or a trial list with reactive adversaries, or a
    ``trace=`` request — falls back to fixed width-sized blocks through
    :func:`run_broadcast_batch`, which applies its own (stamped, counted)
    dispatch per block.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one trial (seed)")
    if adversaries is None:
        adversaries = [None] * len(seeds)
    adversaries = list(adversaries)
    if len(adversaries) != len(seeds):
        raise ValueError(
            f"{len(adversaries)} adversaries for {len(seeds)} seeds (need one per trial)"
        )
    caps = _lane_caps(max_slots, len(seeds))
    if lane_width is None:
        # streams prefer the wider stream_lane_width: refill keeps wide
        # batches occupied, where a fixed block would drain to stragglers
        lane_width = getattr(
            protocol,
            "stream_lane_width",
            getattr(protocol, "batch_lane_width", None),
        )
    if lane_width is None:
        from repro.analysis.stats import DEFAULT_LANE_WIDTH

        lane_width = DEFAULT_LANE_WIDTH
    width = max(1, int(lane_width))
    if trace is not None and len(seeds) > 1:
        raise ValueError(
            "trace recording is scalar-only: run_broadcast_stream got "
            f"trace= with {len(seeds)} trials — record one trial per "
            "trace, or drop trace= to run batched"
        )
    if (
        trace is not None
        or not hasattr(protocol, "run_stream")
        or any(hasattr(adversary, "jam_slot") for adversary in adversaries)
    ):
        results: List[BroadcastResult] = []
        for start in range(0, len(seeds), width):
            stop = start + width
            results.extend(
                run_broadcast_batch(
                    protocol,
                    n,
                    adversaries[start:stop],
                    seeds[start:stop],
                    max_slots=caps[start:stop],
                    trace=trace,
                )
            )
        return results
    stream = LaneStream(n, seeds, adversaries, caps.tolist(), width)
    results = protocol.run_stream(stream)
    missing = [t for t, r in enumerate(results) if r is None]
    if missing:  # a driver bug, not a user error — fail loudly
        raise RuntimeError(f"stream driver left trials {missing} unfinished")
    return results
