"""Channel-limited variants — paper section 7, Figures 5 and 6.

``MultiCast`` and ``MultiCastAdv`` assume ~n/2 (or unbounded) channels;
real spectrum is scarce.  The paper gives two fixes:

* **Fig. 5, ``MultiCast(C)``** — a generic simulation of any *channel-uniform*
  algorithm: each virtual slot becomes a *round* of S = n/(2C) physical
  sub-slots; a node that would use virtual channel k acts in sub-slot
  ⌊(k−1)/C⌋+1 on physical channel ((k−1) mod C)+1.  Corollary 7.1: time
  O(T/C + (n/C)·lg²n), per-node cost unchanged.

* **Fig. 6, ``MultiCastAdv(C)``** — a *cut-off*: drop phases with j > lg C,
  and at the boundary phase j = lg C drop the N'_m ceiling from the helper
  rule.  Theorem 7.2: time/cost dominated by the C^{1−2α} terms.

Implementation notes
--------------------
The Fig. 5 round simulation is *exactly* a relabeling: two nodes collide
physically iff they picked the same virtual channel, and virtual channel
k = q·C + c is jammed in round r iff Eve jams physical channel c in physical
slot r·S + q.  So the virtual jam mask is literally
``physical_mask.reshape(rounds, S*C)`` — we reuse the whole ``MultiCast``
iteration loop on n/2 virtual channels, drawing the adversary's mask at
physical granularity and reshaping.  Energy is identical (a node acts at most
once per round); the clock advances S physical slots per round via the
engine's ``slots_per_row``.

``MultiCastAdvC`` is just ``MultiCastAdv(channel_cap=C)`` — Fig. 6 never needs
the round trick because every kept phase uses 2^j <= C physical channels.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.multicast import MultiCast, _run_multicast_iterations
from repro.core.multicast_adv import MultiCastAdv
from repro.core.result import BroadcastResult
from repro.sim.engine import RadioNetwork
from repro.sim.trace import TraceRecorder

__all__ = ["MultiCastC", "MultiCastAdvC", "effective_channels"]


def effective_channels(n: int, C: int) -> int:
    """Largest C' <= C with (n/2) % C' == 0 (the paper's "round down C").

    Fig. 5 needs the virtual channel set [1, n/2] to split evenly into rounds
    of C physical channels.  When C does not divide n/2 the paper says to
    round C down; we round down to the largest divisor of n/2.
    """
    if n < 4 or n % 2:
        raise ValueError("need even n >= 4")
    if C < 1:
        raise ValueError("need C >= 1")
    half = n // 2
    c = min(C, half)
    while half % c:
        c -= 1
    return c


class MultiCastC(MultiCast):
    """Fig. 5: ``MultiCast`` simulated on C <= n/2 physical channels.

    Parameters are those of :class:`repro.core.multicast.MultiCast` plus
    ``C``.  If C does not divide n/2 it is rounded down (see
    :func:`effective_channels`); the value actually used is ``self.C``.
    """

    def __init__(self, n: int, C: int, **kwargs):
        super().__init__(n, **kwargs)
        self.C = effective_channels(n, C)
        #: physical sub-slots per round: S = n / (2C).
        self.slots_per_round = (n // 2) // self.C

    @property
    def name(self) -> str:
        return f"MultiCast(C={self.C})"

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        S = self.slots_per_round
        C_phys = self.C

        def draw_jamming(rounds: int):
            # Draw Eve's mask at physical granularity and relabel to
            # virtual channels: physical (slot r*S + q, channel c) becomes
            # virtual (round r, channel q*C + c) — see JamBlock.fold_rows.
            phys = net.draw_jamming(rounds * S, C_phys)
            return phys.fold_rows(S)

        result = _run_multicast_iterations(
            self,
            net,
            trace=trace,
            slots_per_row=S,
            draw_jamming=draw_jamming,
        )
        result.extras["physical_channels"] = C_phys
        result.extras["slots_per_round"] = S
        return result

    def run_batch(self, bnet) -> list:
        """Lane-batched :meth:`run`: the Fig. 5 round simulation on every
        lane at once.  The physical-to-virtual relabeling survives batching
        unchanged — each lane's physical mask is drawn at its own clock and
        the lane-stacked block folds per lane, because every lane contributes
        ``rounds * S`` contiguous rows (a multiple of the fold group S)."""
        from repro.core.batch import run_iterations_batch

        S = self.slots_per_round
        C_phys = self.C

        def draw_jamming(lane_ids, rounds: int):
            phys = bnet.draw_jamming(lane_ids, rounds * S, C_phys)
            return phys.fold_rows(S)

        results = run_iterations_batch(
            self,
            bnet,
            first_index=self.start_iteration,
            schedule=self._iteration_schedule,
            make_extras=self._batch_extras,
            slots_per_row=S,
            draw_jamming=draw_jamming,
        )
        for result in results:
            result.extras["physical_channels"] = C_phys
            result.extras["slots_per_round"] = S
        return results

    def run_stream(self, stream) -> list:
        """Continuous-batching :meth:`run_batch`.  The relabeling survives
        ragged merging too: each lane's chunk is ``rounds_l * S`` contiguous
        physical rows (a multiple of the fold group S), folded per lane
        before stacking, so lane offsets in the virtual key space stay
        aligned whatever mix of round counts a pass carries."""
        from repro.core.batch import run_iterations_stream
        from repro.sim.jam import JamBlock

        S = self.slots_per_round
        C_phys = self.C
        bnet = stream.bnet

        def draw_jamming(lane_ids, rounds):
            blocks = bnet.draw_jamming_ragged(
                lane_ids, np.asarray(rounds, dtype=np.int64) * S, C_phys
            )
            return JamBlock.stack([block.fold_rows(S) for block in blocks])

        results = run_iterations_stream(
            self,
            stream,
            first_index=self.start_iteration,
            schedule=self._iteration_schedule,
            make_extras=self._batch_extras,
            slots_per_row=S,
            draw_jamming=draw_jamming,
        )
        for result in results:
            result.extras["physical_channels"] = C_phys
            result.extras["slots_per_round"] = S
        return results


class MultiCastAdvC(MultiCastAdv):
    """Fig. 6: ``MultiCastAdv`` with the phase cut-off at j = lg C.

    A thin constructor over :class:`repro.core.multicast_adv.MultiCastAdv`
    (which implements the cut-off and the boundary-phase helper rule when
    ``channel_cap`` is set); exists so call sites mirror the paper's naming.
    ``C`` may be any positive integer — it is rounded down to a power of two
    internally, per the paper's convention; for C > n/2 behaviour matches
    plain ``MultiCastAdv`` (Theorem 7.2, first case).
    """

    def __init__(self, C: int, **kwargs):
        if "channel_cap" in kwargs:
            raise TypeError("pass C positionally, not channel_cap")
        super().__init__(channel_cap=C, **kwargs)
