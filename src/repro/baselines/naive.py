"""Always-on multi-channel epidemic broadcast (the paper's intro scheme).

"In each time slot, let each node independently choose a random channel, then
let informed nodes broadcast and uninformed nodes listen" — with participation
probability 1.  This is the fastest possible dissemination (constant-factor
growth per slot on n/2 channels) and the paper's starting point; its failure
mode, which ``MultiCast`` fixes, is energy: every node pays 1 unit *every
slot*, so blocking progress for t slots costs each node t — per-node energy is
Theta(adversary time), not O~(sqrt(T/n)).

Termination: the scheme has none (another thing the real protocols add); we
run until an oracle sees everyone informed plus ``linger`` extra slots, or
``max_rounds``.  The oracle termination *flatters* this baseline — its honest
implementation could only stop later — so the energy comparison in the
benches is conservative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import spread_block
from repro.sim.channel import ACT_LISTEN, ACT_SEND_MSG
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = ["NaiveEpidemic"]


class NaiveEpidemic:
    """The introduction's epidemic scheme with p = 1 and oracle termination.

    Parameters
    ----------
    n:
        Number of nodes; uses n/2 channels like the real protocols.
    linger:
        Slots to keep running after the oracle sees full dissemination
        (models the detection delay a real implementation would pay; 0 is
        maximally charitable).
    max_slots_budget:
        Stop (unsuccessfully) after this many slots if dissemination never
        completes — e.g. under blanket jamming.
    """

    def __init__(self, n: int, *, linger: int = 0, max_slots_budget: int = 1_000_000):
        if n < 4:
            raise ValueError("NaiveEpidemic needs n >= 4 (n/2 >= 2 channels)")
        self.n = int(n)
        self.num_channels = self.n // 2
        self.linger = int(linger)
        self.max_slots_budget = int(max_slots_budget)
        # Small blocks: the oracle can only stop the run at a block boundary,
        # so block size bounds the overshoot charged to this baseline.
        self.block_slots = 64

    @property
    def name(self) -> str:
        return "NaiveEpidemic"

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        n, C = self.n, self.num_channels
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        active = np.ones(n, dtype=bool)
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[0] = 0
        completed = True
        if trace is not None:
            trace.record_growth(0, 1)

        def build(coins: np.ndarray, informed_now: np.ndarray, active_now: np.ndarray) -> np.ndarray:
            actions = np.full(coins.shape, ACT_LISTEN, dtype=np.int8)
            actions[:, informed_now] = ACT_SEND_MSG
            actions[:, ~active_now] = 0
            return actions

        blocks = 0
        linger_left: Optional[int] = None
        try:
            while True:
                if net.clock >= self.max_slots_budget:
                    completed = False
                    break
                K = min(
                    self.block_slots,
                    self.max_slots_budget - net.clock,
                    linger_left if linger_left is not None else self.block_slots,
                )
                K = max(1, K)
                channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
                coins = net.rng.random((K, n))
                jam = net.draw_jamming(K, C)
                out = spread_block(
                    channels,
                    coins,
                    jam,
                    informed,
                    active,
                    build,
                    slot0=net.clock,
                    informed_slot=informed_slot,
                    trace=trace,
                )
                net.commit_block(out.actions)
                informed = out.informed
                blocks += 1
                if informed.all():
                    if linger_left is None:
                        # Oracle fires; trim to the exact dissemination point
                        # plus the linger allowance.
                        overshoot = net.clock - int(informed_slot.max())
                        linger_left = max(0, self.linger - overshoot)
                    else:
                        linger_left -= K
                    if linger_left <= 0:
                        break
        except SlotLimitExceeded:
            completed = False

        halt_slot = np.full(n, net.clock, dtype=np.int64)
        return BroadcastResult(
            protocol=self.name,
            n=n,
            slots=net.clock,
            completed=completed,
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~informed).sum()) if not completed else 0,
            periods=blocks,
            extras={"num_channels": C, "oracle_termination": True},
        )
