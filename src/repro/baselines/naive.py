"""Always-on multi-channel epidemic broadcast (the paper's intro scheme).

"In each time slot, let each node independently choose a random channel, then
let informed nodes broadcast and uninformed nodes listen" — with participation
probability 1.  This is the fastest possible dissemination (constant-factor
growth per slot on n/2 channels) and the paper's starting point; its failure
mode, which ``MultiCast`` fixes, is energy: every node pays 1 unit *every
slot*, so blocking progress for t slots costs each node t — per-node energy is
Theta(adversary time), not O~(sqrt(T/n)).

Termination: the scheme has none (another thing the real protocols add); we
run until an oracle sees everyone informed plus ``linger`` extra slots, or
``max_rounds``.  The oracle termination *flatters* this baseline — its honest
implementation could only stop later — so the energy comparison in the
benches is conservative.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import spread_block
from repro.obs.recorder import active as _obs_active
from repro.sim.channel import ACT_LISTEN, ACT_SEND_MSG
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = ["NaiveEpidemic"]


def _epidemic_actions(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Always-on rule: active informed nodes broadcast, active uninformed
    nodes listen, inactive nodes idle.  Lane-polymorphic like the builders in
    :mod:`repro.core.runner` (statuses broadcast as ``status[..., None, :]``)."""
    actions = np.zeros(coins.shape, dtype=np.int8)
    np.copyto(actions, ACT_LISTEN, where=(active & ~informed)[..., None, :])
    np.copyto(actions, ACT_SEND_MSG, where=(active & informed)[..., None, :])
    return actions


class NaiveEpidemic:
    """The introduction's epidemic scheme with p = 1 and oracle termination.

    Parameters
    ----------
    n:
        Number of nodes; uses n/2 channels like the real protocols.
    linger:
        Slots to keep running after the oracle sees full dissemination
        (models the detection delay a real implementation would pay; 0 is
        maximally charitable).
    max_slots_budget:
        Stop (unsuccessfully) after this many slots if dissemination never
        completes — e.g. under blanket jamming.
    """

    def __init__(self, n: int, *, linger: int = 0, max_slots_budget: int = 1_000_000):
        if n < 4:
            raise ValueError("NaiveEpidemic needs n >= 4 (n/2 >= 2 channels)")
        self.n = int(n)
        self.num_channels = self.n // 2
        self.linger = int(linger)
        self.max_slots_budget = int(max_slots_budget)
        # Small blocks: the oracle can only stop the run at a block boundary,
        # so block size bounds the overshoot charged to this baseline.
        self.block_slots = 64

    @property
    def name(self) -> str:
        return "NaiveEpidemic"

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        n, C = self.n, self.num_channels
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        active = np.ones(n, dtype=bool)
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[0] = 0
        completed = True
        if trace is not None:
            trace.record_growth(0, 1)

        build = _epidemic_actions

        blocks = 0
        linger_left: Optional[int] = None
        try:
            while True:
                if net.clock >= self.max_slots_budget:
                    completed = False
                    break
                K = min(
                    self.block_slots,
                    self.max_slots_budget - net.clock,
                    linger_left if linger_left is not None else self.block_slots,
                )
                K = max(1, K)
                channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
                coins = net.rng.random((K, n))
                jam = net.draw_jamming(K, C)
                out = spread_block(
                    channels,
                    coins,
                    jam,
                    informed,
                    active,
                    build,
                    slot0=net.clock,
                    informed_slot=informed_slot,
                    trace=trace,
                )
                net.commit_block(out.actions)
                informed = out.informed
                blocks += 1
                if informed.all():
                    if linger_left is None:
                        # Oracle fires; trim to the exact dissemination point
                        # plus the linger allowance.
                        overshoot = net.clock - int(informed_slot.max())
                        linger_left = max(0, self.linger - overshoot)
                    else:
                        linger_left -= K
                    if linger_left <= 0:
                        break
        except SlotLimitExceeded:
            completed = False

        halt_slot = np.full(n, net.clock, dtype=np.int64)
        return BroadcastResult(
            protocol=self.name,
            n=n,
            slots=net.clock,
            completed=completed,
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~informed).sum()) if not completed else 0,
            periods=blocks,
            extras={"num_channels": C, "oracle_termination": True},
        )

    def run_batch(self, bnet) -> list:
        """Lane-batched :meth:`run` (bit-identical per lane for the same
        seed).

        Naive's block length is lane-local: it shrinks when a lane nears its
        slot budget or counts down a linger allowance.  Each step therefore
        groups live lanes by their next K and batches each group — usually
        one group of everyone at ``block_slots``; the grouping cannot perturb
        results because a lane's draws come from its own generator in its own
        block order regardless of which group ran first.
        """
        from repro.core.runner import spread_block_batch

        if bnet.n != self.n:
            raise ValueError(f"batch network has n={bnet.n}, protocol built for n={self.n}")
        n, C, B = self.n, self.num_channels, bnet.B
        informed = np.zeros((B, n), dtype=bool)
        informed[:, 0] = True
        active = np.ones((B, n), dtype=bool)
        informed_slot = np.full((B, n), -1, dtype=np.int64)
        informed_slot[:, 0] = 0
        completed = np.ones(B, dtype=bool)
        blocks = np.zeros(B, dtype=np.int64)
        linger_left = np.full(B, -1, dtype=np.int64)  # -1 = oracle not fired yet
        live = np.ones(B, dtype=bool)

        while live.any():
            lane_ids = np.nonzero(live)[0]
            clocks = bnet.clocks[lane_ids]
            exhausted = clocks >= self.max_slots_budget
            if exhausted.any():
                completed[lane_ids[exhausted]] = False
                live[lane_ids[exhausted]] = False
                lane_ids = lane_ids[~exhausted]
                clocks = clocks[~exhausted]
                if lane_ids.size == 0:
                    break
            lane_K = np.minimum(self.block_slots, self.max_slots_budget - clocks)
            lingering = linger_left[lane_ids] >= 0
            lane_K = np.where(
                lingering, np.minimum(lane_K, linger_left[lane_ids]), lane_K
            )
            lane_K = np.maximum(1, lane_K)
            for K in np.unique(lane_K):
                group = lane_ids[lane_K == K]
                K = int(K)
                channels = bnet.draw_channels(group, K, C)
                coins = bnet.draw_coins(group, K)
                jam = bnet.draw_jamming(group, K, C)
                sub_slot = informed_slot[group]
                out = spread_block_batch(
                    channels,
                    coins,
                    jam,
                    informed[group],
                    active[group],
                    _epidemic_actions,
                    slot0=bnet.clocks[group],
                    informed_slot=sub_slot,
                )
                overrun = bnet.commit_block(group, out.actions)
                informed_slot[group] = sub_slot
                # the scalar path raises before adopting statuses, so
                # overrun lanes keep their pre-block informed set
                completed[group[overrun]] = False
                live[group[overrun]] = False
                group = group[~overrun]
                informed[group] = out.informed[~overrun]
                blocks[group] += 1
                # Per-lane oracle/linger bookkeeping (the scalar loop's tail).
                for lane in group[informed[group].all(axis=1)]:
                    if linger_left[lane] < 0:
                        overshoot = int(bnet.clocks[lane]) - int(informed_slot[lane].max())
                        linger_left[lane] = max(0, self.linger - overshoot)
                    else:
                        linger_left[lane] -= K
                    if linger_left[lane] <= 0:
                        live[lane] = False

        tel = _obs_active()
        if tel is not None:
            # book the lanes like run_iterations_batch does, so the
            # occupancy invariant (every trial in exactly one lane counter)
            # holds for bespoke run_batch protocols too
            tel.count("batch.batches")
            tel.count("batch.lanes", B)
        return [
            BroadcastResult(
                protocol=self.name,
                n=n,
                slots=int(bnet.clocks[lane]),
                completed=bool(completed[lane]),
                informed_slot=informed_slot[lane].copy(),
                halt_slot=np.full(n, int(bnet.clocks[lane]), dtype=np.int64),
                node_energy=bnet.energy.lane_node_cost(lane),
                adversary_spend=bnet.energy.lane_adversary_spend(lane),
                halted_uninformed=(
                    int((~informed[lane]).sum()) if not completed[lane] else 0
                ),
                periods=int(blocks[lane]),
                extras={"num_channels": C, "oracle_termination": True},
            )
            for lane in range(B)
        ]
