"""Baseline broadcast protocols the paper compares against (or motivates with).

* :class:`repro.baselines.decay.DecayBroadcast` — the classic Decay procedure
  of Bar-Yehuda, Goldreich & Itai (paper ref. [3]): single channel, no
  jamming defense.  Shows what happens to a non-robust protocol under Eve.
* :class:`repro.baselines.naive.NaiveEpidemic` — the always-on multi-channel
  epidemic broadcast from the paper's introduction, with participation
  probability 1: fastest possible dissemination, but per-node energy grows
  linearly with time (not resource-competitive).
* :class:`repro.baselines.single_channel.SingleChannelCompetitive` — stand-in
  for Gilbert et al. SPAA'14 (paper ref. [14]; O(T+n) time, O~(sqrt(T/n))
  energy).  Implemented as the paper's own ``MultiCast(C = 1)`` reduction,
  which section 7 notes matches [14]'s energy bound with time O(T + n lg^2 n).
  See DESIGN.md section 2.4 for the substitution rationale.

All baselines return the same :class:`repro.core.result.BroadcastResult` as
the core protocols, so the comparison benches treat everything uniformly.
"""

from repro.baselines.decay import DecayBroadcast
from repro.baselines.naive import NaiveEpidemic
from repro.baselines.single_channel import SingleChannelCompetitive

__all__ = ["DecayBroadcast", "NaiveEpidemic", "SingleChannelCompetitive"]
