"""Single-channel resource-competitive broadcast (stand-in for Gilbert et
al., SPAA 2014 — the paper's reference [14]).

[14] is the prior state of the art the paper improves on: 1-to-n broadcast on
a *single* channel in O~(T + n) time at per-node cost O~(sqrt(T/n) + 1).  Its
exact pseudocode is not in the reproduced paper, so per the substitution rule
(DESIGN.md section 2.6) we use the paper's own reduction: ``MultiCast(C)``
with C = 1 runs the identical sparse-epidemic/noise-threshold machinery
through one physical channel, and section 7 observes this achieves
O(T + n·lg²n) time at cost O~(sqrt(T/n)) — matching [14] up to the polylog
factors the comparison experiments do not resolve anyway.

What the comparison benches measure with this baseline is exactly what the
paper claims over [14]: the *same* energy but a ~C-fold (here ~n/2-fold)
longer running time, i.e. multiple channels buy speed for free.
"""

from __future__ import annotations

from typing import Optional

from repro.core.limited import MultiCastC
from repro.core.result import BroadcastResult
from repro.sim.engine import RadioNetwork
from repro.sim.trace import TraceRecorder

__all__ = ["SingleChannelCompetitive"]


class SingleChannelCompetitive(MultiCastC):
    """``MultiCast(C=1)`` under its role-name as the [14] baseline.

    Accepts the same tuning knobs as :class:`repro.core.multicast.MultiCast`.
    """

    def __init__(self, n: int, **kwargs):
        super().__init__(n, 1, **kwargs)

    @property
    def name(self) -> str:
        return "SingleChannelCompetitive"
