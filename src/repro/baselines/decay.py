"""The Decay broadcast procedure (Bar-Yehuda, Goldreich & Itai 1992).

The classic single-channel randomized broadcast primitive (the paper's
reference [3]), implemented here as the non-robust baseline: it has no
defense against jamming and no termination detection beyond a fixed epoch
budget, so under Eve it simply burns energy.

Protocol (single-hop specialization): time is divided into *Decay rounds* of
``lg n`` slots.  In slot k of a round (k = 0, 1, ...), every informed node
broadcasts with probability 2^-k; uninformed nodes listen in every slot.
With a single broadcaster surviving the halving with constant probability per
round, an uninformed node is informed with constant probability per round, so
O(lg(1/eps)) rounds inform everyone w.h.p. — in a *clean* channel.  Nodes run
``epochs`` rounds unconditionally (no jamming-aware termination exists in the
original), then stop.

What the comparison benches show: per-node energy is Theta(time) because
uninformed nodes listen constantly, and a blanket jammer with budget T blocks
all progress for T slots (single channel!), so Decay's energy ratio to Eve is
Theta(1) — the motivating failure mode for resource competitiveness.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import count_feedback, spread_block
from repro.obs.recorder import active as _obs_active
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = ["DecayBroadcast"]


def _decay_actions(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Decay action rule: uninformed nodes listen every slot; informed nodes
    send iff their pre-scaled coin clears the slot's halved threshold (coins
    arrive multiplied by 2^k, so the test is ``coin < 1``).  Lane-polymorphic
    like the builders in :mod:`repro.core.runner`: statuses may be ``(n,)``
    against ``(K, n)`` coins or ``(B, n)`` against ``(B, K, n)``."""
    actions = np.zeros(coins.shape, dtype=np.int8)
    np.copyto(actions, ACT_LISTEN, where=(~informed & active)[..., None, :])
    send = (coins < 1.0) & (informed & active)[..., None, :]
    actions[send] = ACT_SEND_MSG
    return actions


class DecayBroadcast:
    """Single-channel Decay baseline.

    Parameters
    ----------
    n:
        Number of nodes.
    epochs:
        Decay rounds to run before stopping; the default 4·lg n gives
        failure probability ~1/n in a clean channel.
    """

    def __init__(self, n: int, *, epochs: Optional[int] = None):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes")
        self.n = int(n)
        self.round_slots = max(1, math.ceil(math.log2(self.n)))
        self.epochs = (
            int(epochs) if epochs is not None else max(1, 4 * self.round_slots)
        )

    @property
    def name(self) -> str:
        return "Decay"

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        n = self.n
        L = self.round_slots
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        active = np.ones(n, dtype=bool)
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[0] = 0
        completed = True
        if trace is not None:
            trace.record_growth(0, 1)

        # Broadcast probability for slot k of a round is 2^-k.  The shared
        # event-driven resolver may rebuild actions from a mid-round offset,
        # so the slot-dependent threshold is folded into the coins up front
        # (send iff coin < 2^-k  <=>  coin·2^k < 1), keeping the builder
        # offset-free.
        scale = (2.0 ** np.arange(L, dtype=np.float64))[:, None]  # (L, 1)
        build = _decay_actions

        epochs_run = 0
        try:
            for _ in range(self.epochs):
                channels = np.zeros((L, n), dtype=np.int32)  # single channel
                coins = net.rng.random((L, n)) * scale
                jam = net.draw_jamming(L, 1)
                out = spread_block(
                    channels,
                    coins,
                    jam,
                    informed,
                    active,
                    build,
                    slot0=net.clock,
                    informed_slot=informed_slot,
                    trace=trace,
                )
                net.commit_block(out.actions)
                informed = out.informed
                epochs_run += 1
                if trace is not None:
                    trace.record_period(
                        "iteration",
                        (epochs_run,),
                        net.clock - L,
                        net.clock,
                        int(informed.sum()),
                        int(active.sum()),
                    )
        except SlotLimitExceeded:
            completed = False

        halt_slot = np.full(n, net.clock, dtype=np.int64)
        return BroadcastResult(
            protocol=self.name,
            n=n,
            slots=net.clock,
            completed=completed,
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            # Decay has no termination detection: stopping uninformed after the
            # epoch budget is the baseline's documented failure mode, counted
            # here so comparison tables surface it.
            halted_uninformed=int((~informed).sum()),
            periods=epochs_run,
            extras={"round_slots": L, "epochs": self.epochs},
        )

    def run_batch(self, bnet) -> list:
        """Lane-batched :meth:`run` (bit-identical per lane for the same
        seed).  Decay is the easiest protocol to batch: every lane runs
        exactly ``epochs`` rounds of ``lg n`` slots, so lanes only ever leave
        the batch on a (rare) per-lane slot-limit overrun."""
        from repro.core.runner import spread_block_batch

        if bnet.n != self.n:
            raise ValueError(f"batch network has n={bnet.n}, protocol built for n={self.n}")
        n, L, B = self.n, self.round_slots, bnet.B
        informed = np.zeros((B, n), dtype=bool)
        informed[:, 0] = True
        active = np.ones((B, n), dtype=bool)
        informed_slot = np.full((B, n), -1, dtype=np.int64)
        informed_slot[:, 0] = 0
        completed = np.ones(B, dtype=bool)
        epochs_run = np.zeros(B, dtype=np.int64)
        live = np.ones(B, dtype=bool)
        scale = (2.0 ** np.arange(L, dtype=np.float64))[None, :, None]  # (1, L, 1)

        for _ in range(self.epochs):
            lane_ids = np.nonzero(live)[0]
            if lane_ids.size == 0:
                break
            channels = np.zeros((lane_ids.size, L, n), dtype=np.int32)  # single channel
            coins = bnet.draw_coins(lane_ids, L) * scale
            jam = bnet.draw_jamming(lane_ids, L, 1)
            sub_slot = informed_slot[lane_ids]
            out = spread_block_batch(
                channels,
                coins,
                jam,
                informed[lane_ids],
                active[lane_ids],
                _decay_actions,
                slot0=bnet.clocks[lane_ids],
                informed_slot=sub_slot,
            )
            overrun = bnet.commit_block(lane_ids, out.actions)
            informed_slot[lane_ids] = sub_slot
            # the scalar path raises before adopting statuses, so overrun
            # lanes keep their pre-block informed set
            completed[lane_ids[overrun]] = False
            live[lane_ids[overrun]] = False
            lane_ids = lane_ids[~overrun]
            informed[lane_ids] = out.informed[~overrun]
            epochs_run[lane_ids] += 1

        tel = _obs_active()
        if tel is not None:
            # book the lanes like run_iterations_batch does, so the
            # occupancy invariant (every trial in exactly one lane counter)
            # holds for bespoke run_batch protocols too
            tel.count("batch.batches")
            tel.count("batch.lanes", B)
        return [
            BroadcastResult(
                protocol=self.name,
                n=n,
                slots=int(bnet.clocks[lane]),
                completed=bool(completed[lane]),
                informed_slot=informed_slot[lane].copy(),
                halt_slot=np.full(n, int(bnet.clocks[lane]), dtype=np.int64),
                node_energy=bnet.energy.lane_node_cost(lane),
                adversary_spend=bnet.energy.lane_adversary_spend(lane),
                halted_uninformed=int((~informed[lane]).sum()),
                periods=int(epochs_run[lane]),
                extras={"round_slots": L, "epochs": self.epochs},
            )
            for lane in range(B)
        ]
