"""Adversary base classes: the oblivious interface and budget enforcement.

Design notes
------------
* **Obliviousness by construction.**  :meth:`Adversary.jam_block` receives
  only ``(start_slot, num_slots, num_channels)``.  The engine never passes
  node state, feedback, or energy information, so adaptivity is impossible to
  express.  (The paper's future-work section conjectures the algorithms also
  survive adaptive jammers; extending this interface would be where that
  experiment starts.)

* **Exact budgets.**  Strategies implement :meth:`ObliviousJammer.propose`,
  which may over-ask; the base class truncates the proposal channel-slot by
  channel-slot in slot-major order so the cumulative spend never exceeds
  ``budget``.  This mirrors the model: Eve stops jamming mid-slot when her
  last unit is gone.

* **Monotone clock.**  ``jam_block`` calls must be contiguous in time
  (protocols never rewind).  The base class asserts this, which has caught
  real protocol bugs (double-drawn blocks) in development.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from repro.sim.jam import JamBlock
from repro.sim.rng import RandomFabric

__all__ = ["Adversary", "ObliviousJammer"]

JamMask = Union[np.ndarray, JamBlock]


class Adversary(ABC):
    """Minimal interface the engine requires of Eve."""

    @abstractmethod
    def jam_block(self, start_slot: int, num_slots: int, num_channels: int) -> JamMask:
        """Return the jamming for ``num_slots`` slots on ``num_channels``
        channels — a dense ``(K, C)`` boolean mask or a sparse
        :class:`repro.sim.jam.JamBlock` (mandatory when C is huge).

        The engine charges one unit of energy per jammed channel-slot.
        Implementations must already respect their own budget.
        """

    @abstractmethod
    def reset(self) -> None:
        """Restore the pristine pre-execution state (budget, coins, cursor)."""

    @property
    @abstractmethod
    def spent(self) -> int:
        """Total channel-slots jammed so far in the current execution."""


class ObliviousJammer(Adversary):
    """Budget-enforcing base class for concrete strategies.

    Subclasses implement :meth:`propose` — a pure function of the slot window
    (plus the jammer's private stream ``self.rng``) returning the mask they
    *would like* to jam.  The base class clips it to the remaining budget.

    Parameters
    ----------
    budget:
        Eve's total energy ``T``.  ``None`` means unbounded (useful for unit
        tests of strategy shapes; experiments always set a budget).
    seed:
        Seed for the jammer's private random stream, independent of the
        honest nodes' streams.
    """

    def __init__(self, budget: Optional[int] = None, seed: int = 0):
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = None if budget is None else int(budget)
        self._seed = int(seed)
        self.rng = RandomFabric(self._seed).generator("jammer")
        self._spent = 0
        self._cursor = 0

    # -- strategy hook -----------------------------------------------------------
    @abstractmethod
    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamMask:
        """Desired jamming for the window, pre-budget: a dense
        ``(num_slots, num_channels)`` boolean mask or a JamBlock.  Strategies
        that can be asked about huge channel counts must return JamBlocks
        (dense masks above ~2^22 cells would not be materializable)."""

    # -- Adversary interface -------------------------------------------------------
    def jam_block(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        if start_slot != self._cursor:
            raise RuntimeError(
                f"non-contiguous jam_block: expected start {self._cursor}, got {start_slot}"
            )
        if num_slots <= 0 or num_channels <= 0:
            raise ValueError("num_slots and num_channels must be positive")
        self._cursor = start_slot + num_slots

        remaining = None if self.budget is None else self.budget - self._spent
        if remaining is not None and remaining <= 0:
            return JamBlock.empty(num_slots, num_channels)

        jam = JamBlock.coerce(self.propose(start_slot, num_slots, num_channels))
        if jam.K != num_slots or jam.C != num_channels:
            raise ValueError(
                f"propose returned (K={jam.K}, C={jam.C}), "
                f"expected (K={num_slots}, C={num_channels})"
            )
        if remaining is not None:
            # Keep the first `remaining` jammed channel-slots in time order —
            # Eve stops jamming mid-slot when her last unit is gone.
            jam = jam.truncate_budget(remaining)
        self._spent += jam.total()
        return jam

    def reset(self) -> None:
        self.rng = RandomFabric(self._seed).generator("jammer")
        self._spent = 0
        self._cursor = 0

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        """Budget still unspent (``None`` when unbounded)."""
        return None if self.budget is None else self.budget - self._spent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(budget={self.budget}, spent={self._spent})"


def resolve_channel_count(spec, num_channels: int) -> int:
    """Turn an int (absolute) or float (fraction) channel spec into a count.

    Shared by strategies that accept e.g. ``channels=4`` or ``channels=0.9``.
    Fractions follow the paper's "y fraction of all channels" phrasing and are
    rounded up (jamming *at least* y-fraction).
    """
    if isinstance(spec, float):
        if not 0.0 <= spec <= 1.0:
            raise ValueError("fractional channel spec must be in [0, 1]")
        return min(num_channels, int(np.ceil(spec * num_channels)))
    count = int(spec)
    if count < 0:
        raise ValueError("channel count must be non-negative")
    return min(num_channels, count)
