"""The jammer strategy gallery.

Each strategy is a pure function of the slot window and the jammer's private
coins (see :mod:`repro.adversary.base` for the obliviousness/budget rules).
The gallery spans the shapes the paper's lemmas quantify over plus the
strategies an actual attacker would try first:

===========================  =====================================================
strategy                     role in the reproduction
===========================  =====================================================
:class:`NoJammer`            the ``T = 0`` baseline of every theorem
:class:`BlanketJammer`       jam k channels (or a fraction) every slot until broke
:class:`FractionalJammer`    jam y-fraction of channels in x-fraction of slots —
                             the exact hypothesis of Lemmas 4.1/4.3/5.1/5.3 and
                             the blocking/non-blocking split of Definition 6.6
:class:`FrontLoadedJammer`   spend the whole budget as early as possible — the
                             worst case for the "fast shutdown after Eve stops"
                             property (EXP-FAST)
:class:`PeriodicBurstJammer` duty-cycled bursts (microwave-oven interference)
:class:`SweepJammer`         rotating contiguous channel window (sweep jammer
                             hardware from the systems literature)
:class:`RandomJammer`        i.i.d. Bernoulli channel-slots (environmental noise)
:class:`ScheduleJammer`      arbitrary precomputed mask/callable (worst cases in
                             tests; regression fixtures)
:class:`PhaseTargetedJammer` jam only inside chosen slot intervals — Eve's best
                             play against ``MultiCastAdv``: she knows the public
                             epoch/phase timetable and hits only the "good"
                             phases (j = lg n - 1, or j = lg C for the limited
                             variant)
:class:`ReplayJammer`        replays a recorded mask exactly (differential tests)
===========================  =====================================================

Sparse proposals
----------------
``MultiCastAdv`` phases use 2^j channels with unbounded j, so strategies must
never materialize a dense (K, C) mask for large C.  Every strategy here
builds a :class:`repro.sim.jam.JamBlock` directly; the number of entries it
materializes is additionally capped near the remaining budget (the base class
would truncate there anyway), so memory is O(min(budget, requested)) — never
O(K·C).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.adversary.base import ObliviousJammer, resolve_channel_count
from repro.sim.jam import JamBlock

__all__ = [
    "NoJammer",
    "BlanketJammer",
    "FractionalJammer",
    "FrontLoadedJammer",
    "PeriodicBurstJammer",
    "SweepJammer",
    "RandomJammer",
    "ScheduleJammer",
    "PhaseTargetedJammer",
    "ReplayJammer",
]

ChannelSpec = Union[int, float]

#: Use vectorized subset sampling below this channel count; Floyd's
#: algorithm above it (O(k) per row instead of O(C)).
_VECTOR_SAMPLE_LIMIT = 1 << 14


def _floyd_sample(rng: np.random.Generator, C: int, k: int) -> np.ndarray:
    """Uniform k-subset of [0, C) in O(k) time/memory (Robert Floyd, 1987)."""
    chosen = set()
    for j in range(C - k, C):
        t = int(rng.integers(0, j + 1))
        if t in chosen:
            chosen.add(j)
        else:
            chosen.add(t)
    return np.fromiter(chosen, dtype=np.int64, count=k)


def _uniform_rows_block(
    K: int, C: int, active_rows: np.ndarray, channels: np.ndarray
) -> JamBlock:
    """CSR block with the same entry count on every active row; ``channels``
    is the row-major concatenation, already sorted within rows.  Equivalent
    to :meth:`JamBlock.from_rows` minus its per-row python loop — strategy
    proposals run once per lane per kernel pass, so this constructor is on
    the hot path of every batched campaign."""
    counts = np.zeros(K, dtype=np.int64)
    counts[active_rows] = channels.size // max(1, active_rows.size)
    indptr = np.zeros(K + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return JamBlock(K, C, indptr, channels)


def _subset_block(
    rng: np.random.Generator,
    K: int,
    C: int,
    active_rows: np.ndarray,
    k: int,
    *,
    entry_cap: Optional[int] = None,
) -> JamBlock:
    """JamBlock with a fresh uniform k-subset of channels on each active row.

    ``entry_cap`` stops materializing entries shortly past the caller's
    remaining budget (the base class truncates exactly there).
    """
    if k <= 0 or active_rows.size == 0:
        return JamBlock.empty(K, C)
    if entry_cap is not None:
        max_rows = max(1, -(-int(entry_cap) // k) + 1)  # ceil + 1 row of slack
        active_rows = active_rows[:max_rows]
    nrows = active_rows.size
    if k >= C:
        return _uniform_rows_block(
            K, C, active_rows, np.tile(np.arange(C, dtype=np.int64), nrows)
        )
    if C <= _VECTOR_SAMPLE_LIMIT:
        keys = rng.random((nrows, C))
        idx = np.argpartition(keys, k - 1, axis=1)[:, :k]
        idx.sort(axis=1)
        return _uniform_rows_block(K, C, active_rows, idx.astype(np.int64).ravel())
    per_row = [np.sort(_floyd_sample(rng, C, k)) for _ in range(nrows)]
    return JamBlock.from_rows(K, C, active_rows, per_row)


def _prefix_block(
    K: int, C: int, active_rows: np.ndarray, k: int, *, entry_cap: Optional[int] = None
) -> JamBlock:
    """JamBlock jamming channels 0..k-1 on each active row."""
    if k <= 0 or active_rows.size == 0:
        return JamBlock.empty(K, C)
    if entry_cap is not None:
        max_rows = max(1, -(-int(entry_cap) // k) + 1)
        active_rows = active_rows[:max_rows]
    prefix = np.arange(min(k, C), dtype=np.int64)
    return _uniform_rows_block(
        K, C, active_rows, np.tile(prefix, active_rows.size)
    )


def _duty_cycle_rows(start_slot: int, num_slots: int, fraction: float) -> np.ndarray:
    """Exact Bresenham duty cycle: slot s active iff floor((s+1)f) > floor(sf).

    Deterministic, so the fraction is honoured over *every* window (the
    paper's lemma hypotheses are per-window, not in expectation).
    """
    if fraction <= 0.0:
        return np.empty(0, dtype=np.int64)
    s = np.arange(start_slot, start_slot + num_slots, dtype=np.int64)
    active = np.floor((s + 1) * fraction) > np.floor(s * fraction)
    return np.nonzero(active)[0]


class NoJammer(ObliviousJammer):
    """Eve is absent (T = 0)."""

    def __init__(self):
        super().__init__(budget=0)

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        return JamBlock.empty(num_slots, num_channels)


class BlanketJammer(ObliviousJammer):
    """Jam a fixed number (or fraction) of channels in every slot until broke.

    ``channels=1.0`` jams everything — on C channels this blocks all
    communication for ``budget / C`` slots, which is the strategy behind the
    trivial Omega(T/C) time lower bound the paper cites when arguing
    ``MultiCast(C)`` is near-optimal.

    Parameters
    ----------
    channels:
        int -> absolute count; float in [0, 1] -> fraction of C (ceil).
    placement:
        ``"prefix"`` jams channels ``0..k-1`` (deterministic), ``"random"``
        picks a fresh uniform subset each slot from Eve's private stream.
    """

    def __init__(
        self,
        budget: Optional[int],
        channels: ChannelSpec = 1.0,
        *,
        placement: str = "prefix",
        seed: int = 0,
    ):
        super().__init__(budget=budget, seed=seed)
        if placement not in ("prefix", "random"):
            raise ValueError("placement must be 'prefix' or 'random'")
        self.channels = channels
        self.placement = placement

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        k = resolve_channel_count(self.channels, num_channels)
        rows = np.arange(num_slots, dtype=np.int64)
        if self.placement == "prefix":
            return _prefix_block(num_slots, num_channels, rows, k, entry_cap=self.remaining)
        return _subset_block(
            self.rng, num_slots, num_channels, rows, k, entry_cap=self.remaining
        )


class FractionalJammer(ObliviousJammer):
    """Jam ``channel_fraction`` of channels during ``slot_fraction`` of slots.

    This is the canonical shape from the paper's analysis: e.g. Lemma 4.1's
    hypothesis survives any jammer below (x = 0.9 of slots, y = 0.9 of
    channels), and Definition 6.6's *blocking epoch* is exactly a window
    where Eve exceeds an (x, y) pair.  Slots follow an exact deterministic
    duty cycle; channels are a fresh random subset per active slot.
    """

    def __init__(
        self,
        budget: Optional[int],
        slot_fraction: float,
        channel_fraction: ChannelSpec,
        *,
        seed: int = 0,
    ):
        super().__init__(budget=budget, seed=seed)
        if not 0.0 <= slot_fraction <= 1.0:
            raise ValueError("slot_fraction must be in [0, 1]")
        self.slot_fraction = float(slot_fraction)
        self.channel_fraction = channel_fraction

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        k = resolve_channel_count(self.channel_fraction, num_channels)
        rows = _duty_cycle_rows(start_slot, num_slots, self.slot_fraction)
        return _subset_block(
            self.rng, num_slots, num_channels, rows, k, entry_cap=self.remaining
        )


class FrontLoadedJammer(ObliviousJammer):
    """Jam every channel of every slot until the budget runs out, then stop.

    On C channels this is total blackout for the first ``budget / C`` slots.
    After she goes broke the network is interference-free, which makes this
    the canonical workload for the paper's section-4 remark that
    ``MultiCastCore`` halts within Theta(lg T-hat) slots of Eve stopping.
    Requires a finite budget (blackout forever is not an experiment).
    """

    def __init__(self, budget: int):
        if budget is None:
            raise ValueError("FrontLoadedJammer requires a finite budget")
        super().__init__(budget=budget)

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        remaining = self.remaining
        assert remaining is not None
        rows = np.arange(num_slots, dtype=np.int64)
        return _prefix_block(
            num_slots, num_channels, rows, num_channels, entry_cap=remaining
        )


class PeriodicBurstJammer(ObliviousJammer):
    """Jam in periodic bursts: ``burst`` slots on, ``period - burst`` off.

    Models duty-cycled interferers (e.g. the paper's microwave-oven example).
    ``phase`` shifts the pattern; ``channels`` picks how much of the spectrum
    each burst covers.
    """

    def __init__(
        self,
        budget: Optional[int],
        period: int,
        burst: int,
        *,
        channels: ChannelSpec = 1.0,
        phase: int = 0,
        seed: int = 0,
    ):
        super().__init__(budget=budget, seed=seed)
        if period <= 0 or burst < 0 or burst > period:
            raise ValueError("need 0 <= burst <= period and period > 0")
        self.period = int(period)
        self.burst = int(burst)
        self.phase = int(phase)
        self.channels = channels

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        k = resolve_channel_count(self.channels, num_channels)
        s = np.arange(start_slot, start_slot + num_slots, dtype=np.int64)
        rows = np.nonzero(((s + self.phase) % self.period) < self.burst)[0]
        return _prefix_block(num_slots, num_channels, rows, k, entry_cap=self.remaining)


class SweepJammer(ObliviousJammer):
    """Jam a contiguous window of ``width`` channels that rotates every
    ``dwell`` slots (wrap-around), modelling sweep-jammer hardware."""

    def __init__(
        self,
        budget: Optional[int],
        width: int,
        *,
        dwell: int = 1,
        seed: int = 0,
    ):
        super().__init__(budget=budget, seed=seed)
        if width < 0 or dwell <= 0:
            raise ValueError("width must be >= 0 and dwell > 0")
        self.width = int(width)
        self.dwell = int(dwell)

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        w = min(self.width, num_channels)
        if w == 0:
            return JamBlock.empty(num_slots, num_channels)
        rows = np.arange(num_slots, dtype=np.int64)
        if self.remaining is not None:
            max_rows = max(1, -(-int(self.remaining) // w) + 1)
            rows = rows[:max_rows]
        s = start_slot + rows
        base = (s // self.dwell) % num_channels
        cols = (base[:, None] + np.arange(w)[None, :]) % num_channels
        cols.sort(axis=1)  # wrap-around windows need re-sorting within a row
        return JamBlock.from_rows(num_slots, num_channels, rows, list(cols))


class RandomJammer(ObliviousJammer):
    """Jam each (slot, channel) independently with probability ``p`` —
    memoryless environmental interference.  For large C the per-slot jammed
    count is drawn Binomial(C, p) and the channels as a uniform subset, which
    is the same distribution without materializing C columns."""

    def __init__(self, budget: Optional[int], p: float, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = float(p)

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        if self.p == 0.0:
            return JamBlock.empty(num_slots, num_channels)
        if num_slots * num_channels <= _VECTOR_SAMPLE_LIMIT * 8:
            return JamBlock.from_dense(
                self.rng.random((num_slots, num_channels)) < self.p
            )
        cap = self.remaining
        rows: List[int] = []
        per_row: List[np.ndarray] = []
        emitted = 0
        for t in range(num_slots):
            k = int(self.rng.binomial(num_channels, self.p))
            if k:
                rows.append(t)
                if num_channels <= _VECTOR_SAMPLE_LIMIT:
                    chans = self.rng.choice(num_channels, size=k, replace=False)
                else:
                    chans = _floyd_sample(self.rng, num_channels, k)
                per_row.append(np.sort(chans))
                emitted += k
            if cap is not None and emitted > cap:
                break
        return JamBlock.from_rows(
            num_slots, num_channels, np.array(rows, dtype=np.int64), per_row
        )


class ScheduleJammer(ObliviousJammer):
    """Jam according to an arbitrary precomputed schedule.

    ``schedule`` is either a 2-D boolean array (rows = slots from slot 0;
    slots past its end are quiet; extra/missing channel columns are
    truncated/zero-padded) or a callable ``(start, K, C) -> (K, C) bool``
    (or JamBlock) for procedurally generated worst cases.
    """

    def __init__(
        self,
        budget: Optional[int],
        schedule: Union[np.ndarray, Callable[[int, int, int], np.ndarray]],
    ):
        super().__init__(budget=budget)
        if callable(schedule):
            self._fn = schedule
            self._table = None
        else:
            table = np.asarray(schedule, dtype=bool)
            if table.ndim != 2:
                raise ValueError("schedule array must be 2-D (slots x channels)")
            self._fn = None
            self._table = table

    def propose(self, start_slot: int, num_slots: int, num_channels: int):
        if self._fn is not None:
            return self._fn(start_slot, num_slots, num_channels)
        mask = np.zeros((num_slots, num_channels), dtype=bool)
        table = self._table
        lo = min(start_slot, table.shape[0])
        hi = min(start_slot + num_slots, table.shape[0])
        if hi > lo:
            cols = min(num_channels, table.shape[1])
            mask[lo - start_slot : hi - start_slot, :cols] = table[lo:hi, :cols]
        return mask


class PhaseTargetedJammer(ObliviousJammer):
    """Jam only inside chosen slot intervals, a fraction of channels each.

    The oblivious adversary knows the protocol (paper section 3), hence its
    deterministic timetable.  Against ``MultiCastAdv`` the analysis (section
    6.1) says her best play is to concentrate on the phases where the
    channel-count guess is right (j = lg n − 1); :mod:`repro.core.schedule`
    computes those intervals, and this strategy burns the budget exactly
    there.

    Parameters
    ----------
    intervals:
        Iterable of ``(start, end)`` half-open global-slot intervals.
    channel_fraction:
        Channels to jam inside the intervals (fraction or count).
    slot_fraction:
        Duty cycle *within* the intervals (1.0 = every slot).
    """

    def __init__(
        self,
        budget: Optional[int],
        intervals: Iterable[Tuple[int, int]],
        *,
        channel_fraction: ChannelSpec = 1.0,
        slot_fraction: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(budget=budget, seed=seed)
        ivals: List[Tuple[int, int]] = sorted((int(a), int(b)) for a, b in intervals)
        for (a, b) in ivals:
            if b < a:
                raise ValueError(f"interval ({a}, {b}) has negative length")
        self.intervals = ivals
        self._starts = np.array([a for a, _ in ivals], dtype=np.int64)
        self._ends = np.array([b for _, b in ivals], dtype=np.int64)
        self.channel_fraction = channel_fraction
        if not 0.0 <= slot_fraction <= 1.0:
            raise ValueError("slot_fraction must be in [0, 1]")
        self.slot_fraction = float(slot_fraction)

    def _in_interval(self, slots: np.ndarray) -> np.ndarray:
        """Vectorized membership test against the sorted interval list."""
        if self._starts.size == 0:
            return np.zeros(slots.shape, dtype=bool)
        idx = np.searchsorted(self._starts, slots, side="right") - 1
        valid = idx >= 0
        result = np.zeros(slots.shape, dtype=bool)
        result[valid] = slots[valid] < self._ends[idx[valid]]
        return result

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> JamBlock:
        k = resolve_channel_count(self.channel_fraction, num_channels)
        s = np.arange(start_slot, start_slot + num_slots, dtype=np.int64)
        active = self._in_interval(s)
        if self.slot_fraction < 1.0:
            f = self.slot_fraction
            duty = np.floor((s + 1) * f) > np.floor(s * f)
            active &= duty
        rows = np.nonzero(active)[0]
        return _subset_block(
            self.rng, num_slots, num_channels, rows, k, entry_cap=self.remaining
        )


class ReplayJammer(ObliviousJammer):
    """Replay a recorded (slots x channels) mask exactly; quiet past its end.

    Unlike :class:`ScheduleJammer`, replay insists the channel dimension
    matches, so differential tests fail loudly on protocol/channel mismatch.
    """

    def __init__(self, recorded: np.ndarray):
        table = np.asarray(recorded, dtype=bool)
        if table.ndim != 2:
            raise ValueError("recorded mask must be 2-D (slots x channels)")
        super().__init__(budget=None)
        self._table = table

    def propose(self, start_slot: int, num_slots: int, num_channels: int) -> np.ndarray:
        if self._table.shape[1] != num_channels:
            raise ValueError(
                f"replay recorded {self._table.shape[1]} channels, engine asked for {num_channels}"
            )
        mask = np.zeros((num_slots, num_channels), dtype=bool)
        lo = min(start_slot, self._table.shape[0])
        hi = min(start_slot + num_slots, self._table.shape[0])
        if hi > lo:
            mask[lo - start_slot : hi - start_slot, :] = self._table[lo:hi, :]
        return mask
