"""Adaptive (reactive) jammers — the paper's section-8 future work.

The paper proves its guarantees for an *oblivious* Eve and conjectures that
``MultiCast``/``MultiCastAdv`` survive an *adaptive* one "with few (or even
no) modifications".  This module implements that extension so the conjecture
can be probed empirically:

* :class:`ReactiveJammer` — the adaptive interface: per slot, Eve first
  *observes* which channels carry at least one transmission (a standard
  reactive-jammer sensing model, cf. Richa et al.), then picks channels to
  jam **within the same slot**.  Budget rules are unchanged: one unit per
  jammed channel-slot.
* :class:`SniperJammer` — jam up to ``k`` of the currently busy channels
  (every unit she spends lands on a live transmission).  NOTE: within-slot
  sensing is *strictly stronger* than both the paper's oblivious model and
  its section-8 adaptive conjecture (which lets Eve react to history, not
  the current slot): empirically the sniper defeats ``MultiCast`` at ~one
  unit per transmission, demonstrating that the obliviousness/latency
  assumption is load-bearing, consistent with the rate-limited reactive
  models of Richa et al. the related-work section cites.
* :class:`TrailingJammer` — jam the channels that were busy in the previous
  slot: the honest one-slot-latency instantiation of "adaptive".  Against
  uniform per-slot rehopping this is barely better than random jamming,
  supporting the paper's conjecture that adaptivity-with-latency does not
  help Eve.
* :class:`ReactiveLatencyJammer` — the latency-parameterized family between
  those endpoints: jam up to ``k`` of the channels that were busy
  ``latency`` slots ago (``latency=0`` is the sniper's sensing power,
  ``latency=1`` the trailing jammer's).  Registered as ``reactive:<latency>``
  in :mod:`repro.exp.registry`, so campaigns can sweep the latency axis and
  locate where Eve's advantage collapses.

Adaptivity cannot be expressed through the oblivious block API (the engine
never shows Eve node behaviour — by design), so reactive jammers run on the
slot-stepped runtimes: :class:`repro.sim.node.ScalarNetwork` (``adversary``
may be reactive; the readable reference) and the vectorized arena of
:mod:`repro.arena` (the fast path — benchmarked against the scalar loop in
``benchmarks/bench_arena.py``, with campaign wiring via
:mod:`repro.exp.registry` and ``python -m repro arena``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.sim.rng import RandomFabric

__all__ = [
    "ReactiveJammer",
    "ReactiveLatencyJammer",
    "SniperJammer",
    "TrailingJammer",
]


class ReactiveJammer(ABC):
    """Adaptive per-slot jammer with sensing.

    Subclasses implement :meth:`react`; the base class enforces the budget
    exactly (channel-by-channel, like the oblivious base).
    """

    def __init__(self, budget: Optional[int] = None, seed: int = 0):
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = None if budget is None else int(budget)
        self._seed = int(seed)
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        return None if self.budget is None else self.budget - self._spent

    def reset(self) -> None:
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    # -- strategy hook ---------------------------------------------------------
    @abstractmethod
    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        """Return the boolean jam mask (C,) for this slot.

        ``busy[c]`` is True iff at least one node is transmitting on channel
        ``c`` *in this slot* (within-slot sensing).  The returned mask is
        budget-clipped by the caller.
        """

    # -- runtime entry point -----------------------------------------------------
    def jam_slot(self, slot: int, busy: np.ndarray) -> np.ndarray:
        """Budget-enforced per-slot jamming (runs every slot of an arena
        execution, so it is written lean).  The returned mask may alias
        ``busy`` or internal state; callers must treat it as read-only and
        not mutate ``busy`` afterwards."""
        remaining = self.remaining
        if remaining is not None and remaining <= 0:
            return np.zeros(busy.shape, dtype=bool)
        mask = np.asarray(self.react(slot, busy), dtype=bool)
        if mask.shape != busy.shape:
            raise ValueError("react returned a mask of the wrong shape")
        spend = int(mask.sum())
        if remaining is not None and spend > remaining:
            jam_positions = np.nonzero(mask)[0]
            mask = mask.copy()
            mask[jam_positions[remaining:]] = False
            spend = remaining
        self._spent += spend
        return mask


class SniperJammer(ReactiveJammer):
    """Jam up to ``k`` currently-busy channels per slot (uniformly chosen if
    more are busy).  Every energy unit lands on a live transmission — the
    strongest per-slot adaptive play under unit costs."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        return _jam_k_of(self.rng, busy, busy, self.k)


def _jam_k_of(
    rng: np.random.Generator, target: np.ndarray, shape_like: np.ndarray, k: int
) -> np.ndarray:
    """Mask jamming up to ``k`` of ``target``'s hot channels (uniform subset
    if more are hot).  When everything hot fits the budget the target mask
    itself is the answer — returned by reference (see ``jam_slot``'s
    read-only contract), which keeps the per-slot hot path at two numpy
    calls for the typical one-transmission slot."""
    if k == 0:
        return np.zeros(shape_like.shape, dtype=bool)
    hot_count = int(target.sum())
    if hot_count <= k:
        return target
    hot = rng.choice(np.nonzero(target)[0], size=k, replace=False)
    mask = np.zeros(shape_like.shape, dtype=bool)
    mask[hot] = True
    return mask


class TrailingJammer(ReactiveJammer):
    """Jam the channels that were busy in the *previous* slot (one-slot
    sensing latency).  Against uniform per-slot channel rehopping this is
    barely better than random — which is the point of measuring it."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)
        self._last_busy: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._last_busy = None

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        prev = self._last_busy
        self._last_busy = busy.copy()
        if prev is None or prev.shape != busy.shape:
            return np.zeros(busy.shape, dtype=bool)
        return _jam_k_of(self.rng, prev, busy, self.k)


class ReactiveLatencyJammer(ReactiveJammer):
    """Jam up to ``k`` of the channels that were busy ``latency`` slots ago.

    The family interpolating between the module's two endpoints:
    ``latency=0`` senses the current slot (the sniper's within-slot power,
    strictly stronger than the paper's section-8 conjecture allows) and
    ``latency>=1`` reacts to stale information (the conjecture's regime —
    ``latency=1`` is exactly the trailing jammer).  Sweeping the latency is
    the cleanest way to measure *where* Eve's advantage collapses; the
    registry exposes this as ``reactive:<latency>``.

    A busy snapshot whose channel count differs from the current slot's
    (``MultiCastAdv`` re-sizes the spectrum between phases) is stale in a
    stronger sense and yields no jamming, like the trailing jammer's
    first-slot blindness.
    """

    def __init__(
        self, budget: Optional[int], *, latency: int = 1, k: int = 1, seed: int = 0
    ):
        super().__init__(budget=budget, seed=seed)
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if k < 0:
            raise ValueError("k must be non-negative")
        self.latency = int(latency)
        self.k = int(k)
        self._history: List[np.ndarray] = []

    def reset(self) -> None:
        super().reset()
        self._history = []

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        if self.latency == 0:
            return _jam_k_of(self.rng, busy, busy, self.k)
        history = self._history
        history.append(busy.copy())
        if len(history) <= self.latency:
            return np.zeros(busy.shape, dtype=bool)
        target = history.pop(0)
        if target.shape != busy.shape:
            return np.zeros(busy.shape, dtype=bool)
        return _jam_k_of(self.rng, target, busy, self.k)
