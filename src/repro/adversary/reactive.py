"""Adaptive (reactive) jammers — the paper's section-8 future work.

The paper proves its guarantees for an *oblivious* Eve and conjectures that
``MultiCast``/``MultiCastAdv`` survive an *adaptive* one "with few (or even
no) modifications".  This module implements that extension so the conjecture
can be probed empirically:

* :class:`ReactiveJammer` — the adaptive interface: per slot, Eve first
  *observes* which channels carry at least one transmission (a standard
  reactive-jammer sensing model, cf. Richa et al.), then picks channels to
  jam **within the same slot**.  Budget rules are unchanged: one unit per
  jammed channel-slot.
* :class:`SniperJammer` — jam up to ``k`` of the currently busy channels
  (every unit she spends lands on a live transmission).  NOTE: within-slot
  sensing is *strictly stronger* than both the paper's oblivious model and
  its section-8 adaptive conjecture (which lets Eve react to history, not
  the current slot): empirically the sniper defeats ``MultiCast`` at ~one
  unit per transmission, demonstrating that the obliviousness/latency
  assumption is load-bearing, consistent with the rate-limited reactive
  models of Richa et al. the related-work section cites.
* :class:`TrailingJammer` — jam the channels that were busy in the previous
  slot: the honest one-slot-latency instantiation of "adaptive".  Against
  uniform per-slot rehopping this is barely better than random jamming,
  supporting the paper's conjecture that adaptivity-with-latency does not
  help Eve.
* :class:`ReactiveLatencyJammer` — the latency-parameterized family between
  those endpoints: jam up to ``k`` of the channels that were busy
  ``latency`` slots ago (``latency=0`` is the sniper's sensing power,
  ``latency=1`` the trailing jammer's).  Registered as ``reactive:<latency>``
  in :mod:`repro.exp.registry`, so campaigns can sweep the latency axis and
  locate where Eve's advantage collapses.

Adaptivity cannot be expressed through the oblivious block API (the engine
never shows Eve node behaviour — by design), so reactive jammers run on the
slot-stepped runtimes: :class:`repro.sim.node.ScalarNetwork` (``adversary``
may be reactive; the readable reference) and the vectorized arena of
:mod:`repro.arena` (the fast path — benchmarked against the scalar loop in
``benchmarks/bench_arena.py``, with campaign wiring via
:mod:`repro.exp.registry` and ``python -m repro arena``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.sim.rng import RandomFabric

__all__ = [
    "ReactiveJammer",
    "ReactiveLatencyJammer",
    "SniperJammer",
    "TrailingJammer",
]


class ReactiveJammer(ABC):
    """Adaptive per-slot jammer with sensing.

    Subclasses implement :meth:`react`; the base class enforces the budget
    exactly (channel-by-channel, like the oblivious base).
    """

    def __init__(self, budget: Optional[int] = None, seed: int = 0):
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = None if budget is None else int(budget)
        self._seed = int(seed)
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        return None if self.budget is None else self.budget - self._spent

    def reset(self) -> None:
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    # -- strategy hook ---------------------------------------------------------
    @abstractmethod
    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        """Return the boolean jam mask (C,) for this slot.

        ``busy[c]`` is True iff at least one node is transmitting on channel
        ``c`` *in this slot* (within-slot sensing).  The returned mask is
        budget-clipped by the caller.
        """

    # -- window interface (block-stepped arena) --------------------------------
    @property
    def window_latency(self) -> Optional[int]:
        """Sensing latency in slots, or ``None`` when the jammer cannot be
        window-stepped.

        A value ``L >= 1`` promises that :meth:`react` depends only on busy
        masks at least ``L`` slots old, so the windowed arena driver
        (:mod:`repro.arena.window`) may resolve whole blocks of slots and
        query :meth:`jam_window` with externally-reconstructed targets.
        ``L == 0`` (within-slot sensing) forces slot stepping; ``None``
        (the base default) marks a strategy whose sensing the driver cannot
        reconstruct, which also forces slot stepping."""
        return None

    def checkpoint(self):
        """Snapshot (rng state, spent) for speculative window execution."""
        return (self.rng.bit_generator.state, self._spent)

    def restore(self, state) -> None:
        """Rewind to a :meth:`checkpoint` snapshot (exact rollback)."""
        rng_state, spent = state
        self.rng.bit_generator.state = rng_state
        self._spent = spent

    def jam_window(
        self, slot0: int, targets: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """Jam a window of ``W`` slots in one call, draw-for-draw identical
        to ``W`` consecutive :meth:`jam_slot` calls.

        ``targets[t]`` is the busy mask the strategy would aim at in slot
        ``slot0 + t`` (the caller reconstructs it from committed history for
        the first ``window_latency`` rows and from in-window busy masks
        after that); ``valid[t]`` is False for rows where the sensed
        snapshot does not exist or has a mismatched channel count — those
        rows jam nothing and consume no randomness, exactly like the
        per-slot warm-up/mismatch paths.

        Per-slot RNG parity, row by row in slot order: a row with exhausted
        budget, ``valid=False``, ``k == 0`` or ``hot == 0`` draws nothing;
        a row with ``0 < hot <= k`` jams the whole target without drawing;
        a row with ``hot > k`` consumes exactly one ``rng.choice``.  The
        budget is spent in row order and the first row that cannot be fully
        afforded is clipped to its first ``remaining`` hot channels in
        ascending channel order — matching :meth:`jam_slot`'s clip."""
        targets = np.asarray(targets, dtype=bool)
        valid = np.asarray(valid, dtype=bool)
        W, C = targets.shape
        masks = np.zeros((W, C), dtype=bool)
        k = int(getattr(self, "k", 0))
        if W == 0 or k == 0:
            return masks
        hot = np.where(valid, targets.sum(axis=1), 0)
        nominal = np.minimum(hot, k)
        if self.budget is None:
            cut = W
            entry_budget = 0
        else:
            remaining = self.budget - self._spent
            if remaining <= 0:
                return masks
            cum = np.cumsum(nominal)
            # rows [0, cut) fit the budget whole; row ``cut`` (if any) is
            # the per-slot path's partially-clipped slot.
            cut = int((cum <= remaining).sum())
            entry_budget = int(remaining - (cum[cut - 1] if cut else 0))
        easy = (hot[:cut] > 0) & (hot[:cut] <= k)
        masks[:cut][easy] = targets[:cut][easy]
        for t in np.nonzero(hot[:cut] > k)[0]:
            pick = self.rng.choice(np.nonzero(targets[t])[0], size=k, replace=False)
            masks[t, pick] = True
        spend = int(nominal[:cut].sum())
        if cut < W and entry_budget > 0:
            t = cut
            if hot[t] <= k:
                row = targets[t].copy()
            else:
                pick = self.rng.choice(np.nonzero(targets[t])[0], size=k, replace=False)
                row = np.zeros(C, dtype=bool)
                row[pick] = True
            pos = np.nonzero(row)[0]
            row[pos[entry_budget:]] = False
            masks[t] = row
            spend += int(row.sum())
        self._spent += spend
        return masks

    # -- runtime entry point -----------------------------------------------------
    def jam_slot(self, slot: int, busy: np.ndarray) -> np.ndarray:
        """Budget-enforced per-slot jamming (runs every slot of an arena
        execution, so it is written lean).  The returned mask may alias
        ``busy`` or internal state; callers must treat it as read-only and
        not mutate ``busy`` afterwards."""
        remaining = self.remaining
        if remaining is not None and remaining <= 0:
            return np.zeros(busy.shape, dtype=bool)
        mask = np.asarray(self.react(slot, busy), dtype=bool)
        if mask.shape != busy.shape:
            raise ValueError("react returned a mask of the wrong shape")
        spend = int(mask.sum())
        if remaining is not None and spend > remaining:
            jam_positions = np.nonzero(mask)[0]
            mask = mask.copy()
            mask[jam_positions[remaining:]] = False
            spend = remaining
        self._spent += spend
        return mask


class SniperJammer(ReactiveJammer):
    """Jam up to ``k`` currently-busy channels per slot (uniformly chosen if
    more are busy).  Every energy unit lands on a live transmission — the
    strongest per-slot adaptive play under unit costs."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)

    @property
    def window_latency(self) -> Optional[int]:
        return 0  # within-slot sensing: slot stepping is the only sound mode

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        return _jam_k_of(self.rng, busy, busy, self.k)


def _jam_k_of(
    rng: np.random.Generator, target: np.ndarray, shape_like: np.ndarray, k: int
) -> np.ndarray:
    """Mask jamming up to ``k`` of ``target``'s hot channels (uniform subset
    if more are hot).  When everything hot fits the budget the target mask
    itself is the answer — returned by reference (see ``jam_slot``'s
    read-only contract), which keeps the per-slot hot path at two numpy
    calls for the typical one-transmission slot."""
    if k == 0:
        return np.zeros(shape_like.shape, dtype=bool)
    hot_count = int(target.sum())
    if hot_count <= k:
        return target
    hot = rng.choice(np.nonzero(target)[0], size=k, replace=False)
    mask = np.zeros(shape_like.shape, dtype=bool)
    mask[hot] = True
    return mask


class TrailingJammer(ReactiveJammer):
    """Jam the channels that were busy in the *previous* slot (one-slot
    sensing latency).  Against uniform per-slot channel rehopping this is
    barely better than random — which is the point of measuring it."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)
        self._last_busy: Optional[np.ndarray] = None

    @property
    def window_latency(self) -> Optional[int]:
        return 1

    def reset(self) -> None:
        super().reset()
        self._last_busy = None

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        prev = self._last_busy
        self._last_busy = busy.copy()
        if prev is None or prev.shape != busy.shape:
            return np.zeros(busy.shape, dtype=bool)
        return _jam_k_of(self.rng, prev, busy, self.k)


class ReactiveLatencyJammer(ReactiveJammer):
    """Jam up to ``k`` of the channels that were busy ``latency`` slots ago.

    The family interpolating between the module's two endpoints:
    ``latency=0`` senses the current slot (the sniper's within-slot power,
    strictly stronger than the paper's section-8 conjecture allows) and
    ``latency>=1`` reacts to stale information (the conjecture's regime —
    ``latency=1`` is exactly the trailing jammer).  Sweeping the latency is
    the cleanest way to measure *where* Eve's advantage collapses; the
    registry exposes this as ``reactive:<latency>``.

    A busy snapshot whose channel count differs from the current slot's
    (``MultiCastAdv`` re-sizes the spectrum between phases) is stale in a
    stronger sense and yields no jamming, like the trailing jammer's
    first-slot blindness.
    """

    def __init__(
        self, budget: Optional[int], *, latency: int = 1, k: int = 1, seed: int = 0
    ):
        super().__init__(budget=budget, seed=seed)
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if k < 0:
            raise ValueError("k must be non-negative")
        self.latency = int(latency)
        self.k = int(k)
        self._history: List[np.ndarray] = []

    @property
    def window_latency(self) -> Optional[int]:
        return self.latency

    def reset(self) -> None:
        super().reset()
        self._history = []

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        if self.latency == 0:
            return _jam_k_of(self.rng, busy, busy, self.k)
        history = self._history
        history.append(busy.copy())
        if len(history) <= self.latency:
            return np.zeros(busy.shape, dtype=bool)
        target = history.pop(0)
        if target.shape != busy.shape:
            return np.zeros(busy.shape, dtype=bool)
        return _jam_k_of(self.rng, target, busy, self.k)
