"""Adaptive (reactive) jammers — the paper's section-8 future work.

The paper proves its guarantees for an *oblivious* Eve and conjectures that
``MultiCast``/``MultiCastAdv`` survive an *adaptive* one "with few (or even
no) modifications".  This module implements that extension so the conjecture
can be probed empirically:

* :class:`ReactiveJammer` — the adaptive interface: per slot, Eve first
  *observes* which channels carry at least one transmission (a standard
  reactive-jammer sensing model, cf. Richa et al.), then picks channels to
  jam **within the same slot**.  Budget rules are unchanged: one unit per
  jammed channel-slot.
* :class:`SniperJammer` — jam up to ``k`` of the currently busy channels
  (every unit she spends lands on a live transmission).  NOTE: within-slot
  sensing is *strictly stronger* than both the paper's oblivious model and
  its section-8 adaptive conjecture (which lets Eve react to history, not
  the current slot): empirically the sniper defeats ``MultiCast`` at ~one
  unit per transmission, demonstrating that the obliviousness/latency
  assumption is load-bearing, consistent with the rate-limited reactive
  models of Richa et al. the related-work section cites.
* :class:`TrailingJammer` — jam the channels that were busy in the previous
  slot: the honest one-slot-latency instantiation of "adaptive".  Against
  uniform per-slot rehopping this is barely better than random jamming,
  supporting the paper's conjecture that adaptivity-with-latency does not
  help Eve.

Adaptivity cannot be expressed through the oblivious block API (the engine
never shows Eve node behaviour — by design), so reactive jammers run on the
scalar slot-by-slot runtime: see
:func:`repro.sim.node.ScalarNetwork` (``adversary`` may be reactive) and the
``bench_adaptive_extension`` experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.sim.rng import RandomFabric

__all__ = ["ReactiveJammer", "SniperJammer", "TrailingJammer"]


class ReactiveJammer(ABC):
    """Adaptive per-slot jammer with sensing.

    Subclasses implement :meth:`react`; the base class enforces the budget
    exactly (channel-by-channel, like the oblivious base).
    """

    def __init__(self, budget: Optional[int] = None, seed: int = 0):
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = None if budget is None else int(budget)
        self._seed = int(seed)
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        return None if self.budget is None else self.budget - self._spent

    def reset(self) -> None:
        self.rng = RandomFabric(self._seed).generator("reactive")
        self._spent = 0

    # -- strategy hook ---------------------------------------------------------
    @abstractmethod
    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        """Return the boolean jam mask (C,) for this slot.

        ``busy[c]`` is True iff at least one node is transmitting on channel
        ``c`` *in this slot* (within-slot sensing).  The returned mask is
        budget-clipped by the caller.
        """

    # -- runtime entry point -----------------------------------------------------
    def jam_slot(self, slot: int, busy: np.ndarray) -> np.ndarray:
        remaining = self.remaining
        if remaining is not None and remaining <= 0:
            return np.zeros(busy.shape, dtype=bool)
        mask = np.asarray(self.react(slot, busy), dtype=bool)
        if mask.shape != busy.shape:
            raise ValueError("react returned a mask of the wrong shape")
        if remaining is not None and mask.sum() > remaining:
            jam_positions = np.nonzero(mask)[0]
            mask = mask.copy()
            mask[jam_positions[remaining:]] = False
        self._spent += int(mask.sum())
        return mask


class SniperJammer(ReactiveJammer):
    """Jam up to ``k`` currently-busy channels per slot (uniformly chosen if
    more are busy).  Every energy unit lands on a live transmission — the
    strongest per-slot adaptive play under unit costs."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        mask = np.zeros(busy.shape, dtype=bool)
        hot = np.nonzero(busy)[0]
        if hot.size == 0 or self.k == 0:
            return mask
        if hot.size > self.k:
            hot = self.rng.choice(hot, size=self.k, replace=False)
        mask[hot] = True
        return mask


class TrailingJammer(ReactiveJammer):
    """Jam the channels that were busy in the *previous* slot (one-slot
    sensing latency).  Against uniform per-slot channel rehopping this is
    barely better than random — which is the point of measuring it."""

    def __init__(self, budget: Optional[int], k: int = 1, *, seed: int = 0):
        super().__init__(budget=budget, seed=seed)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)
        self._last_busy: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._last_busy = None

    def react(self, slot: int, busy: np.ndarray) -> np.ndarray:
        mask = np.zeros(busy.shape, dtype=bool)
        prev = self._last_busy
        self._last_busy = busy.copy()
        if prev is None or prev.shape != busy.shape:
            return mask
        hot = np.nonzero(prev)[0]
        if hot.size == 0 or self.k == 0:
            return mask
        if hot.size > self.k:
            hot = self.rng.choice(hot, size=self.k, replace=False)
        mask[hot] = True
        return mask
