"""Oblivious jamming adversaries ("Eve").

The paper's adversary model (section 3): Eve knows the algorithm and may jam
any set of channels in any slot at one unit of energy per channel-slot, out of
a total budget ``T``.  She is *oblivious* — her strategy may depend on the
slot index and her own coins, but not on the execution (she cannot observe
channels or the nodes' random bits).

This package enforces that structurally: a strategy only ever receives
``(start_slot, num_slots, num_channels)``.  Budget accounting and truncation
live in the shared base class, so every strategy is automatically exact about
``T``.

The gallery covers the strategy shapes the paper's analysis quantifies over:
blanket jamming, fractional (x, y) duty-cycle jamming (the exact hypothesis
shape of Lemmas 4.1/4.3/5.1/5.3 and Definition 6.6), front-loaded spend,
periodic bursts, channel sweeps, i.i.d. random jamming, arbitrary precomputed
schedules, and timetable-targeted jamming (Eve's best play against
``MultiCastAdv``: concentrate on the phases where the protocol's channel-count
guess is right).
"""

from repro.adversary.base import Adversary, ObliviousJammer
from repro.adversary.reactive import (
    ReactiveJammer,
    ReactiveLatencyJammer,
    SniperJammer,
    TrailingJammer,
)
from repro.adversary.strategies import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    NoJammer,
    PeriodicBurstJammer,
    PhaseTargetedJammer,
    RandomJammer,
    ReplayJammer,
    ScheduleJammer,
    SweepJammer,
)

__all__ = [
    "Adversary",
    "ObliviousJammer",
    "ReactiveJammer",
    "ReactiveLatencyJammer",
    "SniperJammer",
    "TrailingJammer",
    "NoJammer",
    "BlanketJammer",
    "FractionalJammer",
    "FrontLoadedJammer",
    "PeriodicBurstJammer",
    "PhaseTargetedJammer",
    "RandomJammer",
    "ReplayJammer",
    "ScheduleJammer",
    "SweepJammer",
]
