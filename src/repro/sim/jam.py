"""Sparse block representation of jamming.

``MultiCastAdv`` uses 2^j channels in phase j with unbounded j, so a dense
``(K, C)`` jam mask is not materializable (C reaches 2^25+ in late epochs even
for n = 16).  The fix is structural: Eve's *energy budget* bounds the number
of jammed channel-slots, so jamming is stored sparsely — a CSR-style layout of
``(slot, channel)`` pairs, row-major, channels sorted within each slot:

* ``indptr`` — ``(K+1,)`` int64; slot t's jammed channels live at
  ``channels[indptr[t]:indptr[t+1]]``;
* ``channels`` — sorted-within-row channel indices.

Memory is O(jammed channel-slots) <= O(budget), independent of C.  The layout
gives three O(1)-ish primitives the engine needs:

* ``total()``/``counts()`` for exact energy accounting,
* ``slice(t0, t1)`` (zero-copy) for the protocols' tail re-resolution, and
* ``lookup(rows, cols)`` (binary search on flat slot*C+channel keys) for the
  sparse channel-resolution path in :func:`repro.sim.channel.resolve_block`.

Dense boolean masks remain first-class: strategies may return either, and
:meth:`JamBlock.coerce` normalizes at the engine boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["JamBlock"]


class JamBlock:
    """Jamming for ``K`` slots on ``C`` channels, stored sparsely."""

    __slots__ = ("K", "C", "indptr", "channels", "_flat_keys")

    def __init__(self, K: int, C: int, indptr: np.ndarray, channels: np.ndarray):
        self.K = int(K)
        self.C = int(C)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.channels = np.ascontiguousarray(channels, dtype=np.int64)
        self._flat_keys: Optional[np.ndarray] = None
        if self.indptr.shape != (self.K + 1,):
            raise ValueError(f"indptr must have shape ({self.K + 1},)")
        if self.indptr[0] != 0 or self.indptr[-1] != self.channels.shape[0]:
            raise ValueError("indptr endpoints inconsistent with channels array")

    # -- constructors ------------------------------------------------------------
    @classmethod
    def empty(cls, K: int, C: int) -> "JamBlock":
        """No jamming at all."""
        return cls(K, C, np.zeros(K + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_dense(cls, mask: np.ndarray) -> "JamBlock":
        """Convert a ``(K, C)`` boolean mask (row-major nonzero order is
        already sorted-within-row)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("dense mask must be 2-D")
        K, C = mask.shape
        rows, cols = np.nonzero(mask)
        indptr = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=K), out=indptr[1:])
        return cls(K, C, indptr, cols)

    @classmethod
    def from_rows(
        cls,
        K: int,
        C: int,
        row_indices: np.ndarray,
        row_channels: Sequence[np.ndarray],
    ) -> "JamBlock":
        """Build from per-row channel arrays.

        ``row_indices`` are the (strictly increasing) slots that have any
        jamming; ``row_channels[k]`` are the channels jammed in
        ``row_indices[k]`` (need not be sorted; duplicates are an error
        upstream — Eve cannot jam one channel twice in one slot).
        """
        counts = np.zeros(K, dtype=np.int64)
        parts: List[np.ndarray] = []
        for r, chans in zip(row_indices, row_channels):
            arr = np.sort(np.asarray(chans, dtype=np.int64))
            counts[int(r)] = arr.shape[0]
            parts.append(arr)
        indptr = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        channels = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return cls(K, C, indptr, channels)

    @classmethod
    def coerce(cls, jam: Union["JamBlock", np.ndarray]) -> "JamBlock":
        """Normalize a strategy's return value (dense array or JamBlock).

        A 3-D ``(B, K, C)`` dense mask (one lane per leading index) is
        accepted too and flattens to a ``(B*K, C)`` block — the lane-major
        row layout the batched kernel path expects (see
        :func:`repro.sim.channel.resolve_block` and :meth:`stack`).
        """
        if isinstance(jam, cls):
            return jam
        jam = np.asarray(jam, dtype=bool)
        if jam.ndim == 3:
            B, K, C = jam.shape
            return cls.from_dense(jam.reshape(B * K, C))
        return cls.from_dense(jam)

    @classmethod
    def stack(cls, blocks: Sequence["JamBlock"]) -> "JamBlock":
        """Concatenate blocks along the slot axis (all must share ``C``).

        This is how the batched execution layer builds one flat jam block out
        of ``B`` per-lane blocks of ``K`` slots each: row ``l*K + t`` of the
        stacked block is lane ``l``'s slot ``t``, so the flat resolution keys
        become ``lane*K*C + slot*C + channel`` with no per-lane dispatch.
        Zero-copy is impossible here (indptr must be re-based), but the cost
        is O(total nnz + total K).
        """
        blocks = list(blocks)
        if not blocks:
            raise ValueError("need at least one block to stack")
        C = blocks[0].C
        if any(b.C != C for b in blocks):
            raise ValueError("stacked blocks must share the channel count C")
        K = sum(b.K for b in blocks)
        indptr = np.zeros(K + 1, dtype=np.int64)
        pos = 0
        offset = 0
        for b in blocks:
            indptr[pos + 1 : pos + b.K + 1] = b.indptr[1:] + offset
            pos += b.K
            offset += b.total()
        channels = (
            np.concatenate([b.channels for b in blocks])
            if offset
            else np.empty(0, dtype=np.int64)
        )
        return cls(K, C, indptr, channels)

    # -- accounting ----------------------------------------------------------------
    def total(self) -> int:
        """Jammed channel-slots in the block (Eve's energy for the block)."""
        return int(self.indptr[-1])

    def counts(self) -> np.ndarray:
        """``(K,)`` jammed-channel count per slot."""
        return np.diff(self.indptr)

    # -- queries ---------------------------------------------------------------------
    def _keys(self) -> np.ndarray:
        if self._flat_keys is None:
            rows = np.repeat(np.arange(self.K, dtype=np.int64), self.counts())
            self._flat_keys = rows * self.C + self.channels
        return self._flat_keys

    def lookup(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized membership: is channel ``cols[i]`` jammed in slot
        ``rows[i]``?  O(q log nnz)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.lookup_keys(rows * self.C + cols)

    def lookup_keys(self, keys: np.ndarray) -> np.ndarray:
        """Membership for precomputed flat ``slot * C + channel`` keys."""
        flat = self._keys()
        if flat.shape[0] == 0:
            return np.zeros(keys.shape, dtype=bool)
        idx = np.searchsorted(flat, keys)
        idx_clipped = np.minimum(idx, flat.shape[0] - 1)
        return flat[idx_clipped] == keys

    def slice(self, t0: int, t1: Optional[int] = None) -> "JamBlock":
        """Zero-copy row slice ``[t0, t1)`` (t1 defaults to K)."""
        t1 = self.K if t1 is None else int(t1)
        t0 = int(t0)
        if not 0 <= t0 <= t1 <= self.K:
            raise IndexError(f"slice [{t0}, {t1}) out of range for K={self.K}")
        lo, hi = int(self.indptr[t0]), int(self.indptr[t1])
        return JamBlock(
            t1 - t0,
            self.C,
            self.indptr[t0 : t1 + 1] - lo,
            self.channels[lo:hi],
        )

    def truncate_budget(self, limit: int) -> "JamBlock":
        """Keep only the first ``limit`` jammed channel-slots in time order
        (row-major) — the budget-exhaustion rule of the model."""
        limit = max(0, int(limit))
        if self.total() <= limit:
            return self
        return JamBlock(
            self.K,
            self.C,
            np.minimum(self.indptr, limit),
            self.channels[:limit],
        )

    def fold_rows(self, group: int) -> "JamBlock":
        """Regroup ``group`` consecutive rows into one row of ``group * C``
        virtual channels: old (row g·group + q, channel c) becomes
        (row g, channel q·C + c).

        This is the Fig. 5 physical-to-virtual relabeling (see
        :mod:`repro.core.limited`): with S = n/(2C) sub-slots per round,
        ``phys.fold_rows(S)`` is the jam mask on the n/2 virtual channels.
        Zero-copy on ``indptr``; O(nnz) on channels.  Row-major entry order is
        preserved, and within a new row the relabeled channels stay sorted
        because q·C + c is increasing in (q, c).
        """
        group = int(group)
        if group <= 0 or self.K % group:
            raise ValueError(f"K={self.K} not divisible by group={group}")
        rows = np.repeat(np.arange(self.K, dtype=np.int64), self.counts())
        new_channels = (rows % group) * self.C + self.channels
        return JamBlock(self.K // group, self.C * group, self.indptr[::group], new_channels)

    def to_dense(self) -> np.ndarray:
        """Materialize the ``(K, C)`` boolean mask (small C only)."""
        mask = np.zeros((self.K, self.C), dtype=bool)
        if self.total():
            rows = np.repeat(np.arange(self.K, dtype=np.int64), self.counts())
            mask[rows, self.channels] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JamBlock(K={self.K}, C={self.C}, nnz={self.total()})"
