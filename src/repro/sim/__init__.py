"""Radio-network simulation substrate.

This subpackage implements the synchronous, single-hop, multi-channel radio
network model of Chen & Zheng (SPAA 2019), section 3:

* time is divided into discrete slots; all nodes start at slot 0;
* in each slot a node accesses one channel and broadcasts, listens, or idles;
* per (slot, channel): no broadcaster and no jamming -> silence; exactly one
  broadcaster and no jamming -> the message is delivered to every listener;
  two or more broadcasters, or jamming -> noise.  Collision and jamming are
  indistinguishable, and broadcasters receive no feedback;
* broadcast/listen cost one unit of energy per slot, idling is free; jamming
  one channel for one slot costs the adversary one unit.

The hot path is fully vectorized with NumPy: slots are resolved in blocks
(:func:`repro.sim.channel.resolve_block`), and :class:`repro.sim.engine.RadioNetwork`
keeps the global clock, the per-node energy ledger and the adversary spend in
sync.  A scalar, slot-by-slot runtime (:mod:`repro.sim.node`) provides a
readable reference implementation used for differential testing.
"""

from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
    resolve_block,
    resolve_slot,
)
from repro.sim.jam import JamBlock
from repro.sim.engine import BatchNetwork, BlockProtocolError, RadioNetwork, SlotLimitExceeded
from repro.sim.metrics import BatchEnergyLedger, EnergyLedger
from repro.sim.node import NodeProtocol, ScalarNetwork
from repro.sim.rng import RandomFabric, derive_seed
from repro.sim.trace import TraceRecorder

__all__ = [
    "ACT_IDLE",
    "ACT_LISTEN",
    "ACT_SEND_BEACON",
    "ACT_SEND_MSG",
    "FB_BEACON",
    "FB_MSG",
    "FB_NOISE",
    "FB_NONE",
    "FB_SILENCE",
    "BatchEnergyLedger",
    "BatchNetwork",
    "BlockProtocolError",
    "JamBlock",
    "EnergyLedger",
    "NodeProtocol",
    "RadioNetwork",
    "RandomFabric",
    "ScalarNetwork",
    "SlotLimitExceeded",
    "TraceRecorder",
    "derive_seed",
    "resolve_block",
    "resolve_slot",
]
