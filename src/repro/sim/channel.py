"""Channel-contention semantics of the radio-network model (paper section 3).

This module is the innermost kernel of the simulator.  Given, for a block of
``K`` consecutive slots, each node's channel choice and action, plus the
adversary's jamming mask, :func:`resolve_block` computes every listener's
feedback in one vectorized pass (a single flat ``np.bincount`` per message
type plus boolean algebra — no Python-level slot loop).

Model rules, per (slot, channel):

========================  =========================================
condition                 every listener on the channel observes
========================  =========================================
0 broadcasters, no jam    silence (``FB_SILENCE``)
1 broadcaster,  no jam    the broadcast payload (``FB_MSG``/``FB_BEACON``)
>=2 broadcasters or jam   noise (``FB_NOISE``)
========================  =========================================

Broadcasters receive no feedback (``FB_NONE``), and nodes cannot distinguish
collision noise from jamming noise — both map to ``FB_NOISE``.

Two payload kinds exist because ``MultiCastAdv`` (paper Fig. 4) lets
uninformed nodes broadcast a special beacon ``+-`` in step two; all other
protocols only ever send the source message ``m``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sim.jam import JamBlock

__all__ = [
    "ACT_IDLE",
    "ACT_LISTEN",
    "ACT_SEND_MSG",
    "ACT_SEND_BEACON",
    "FB_NONE",
    "FB_SILENCE",
    "FB_MSG",
    "FB_BEACON",
    "FB_NOISE",
    "resolve_block",
    "resolve_slot",
]

# -- node actions (per slot) -------------------------------------------------
ACT_IDLE = np.int8(0)  #: do nothing (free)
ACT_LISTEN = np.int8(1)  #: listen on the chosen channel (cost 1)
ACT_SEND_MSG = np.int8(2)  #: broadcast the source message ``m`` (cost 1)
ACT_SEND_BEACON = np.int8(3)  #: broadcast the beacon ``+-`` (cost 1)

# -- listener feedback --------------------------------------------------------
FB_NONE = np.int8(-1)  #: the node did not listen this slot
FB_SILENCE = np.int8(0)  #: clear channel
FB_MSG = np.int8(1)  #: received the source message ``m``
FB_BEACON = np.int8(2)  #: received the beacon ``+-``
FB_NOISE = np.int8(3)  #: collision and/or jamming (indistinguishable)

_SENDING = (ACT_SEND_MSG, ACT_SEND_BEACON)


#: Above this many (slot, channel) cells the dense grid path switches to the
#: sparse participant-keyed path (``MultiCastAdv`` reaches C = 2^25+).
DENSE_CELL_LIMIT = 1 << 22


def resolve_block(
    channels: np.ndarray,
    actions: np.ndarray,
    jammed: Union[np.ndarray, JamBlock],
    *,
    check: bool = False,
) -> np.ndarray:
    """Resolve a block of slots and return per-node feedback.

    Parameters
    ----------
    channels:
        ``(K, n)`` integer array; ``channels[t, u]`` is node ``u``'s channel in
        slot ``t`` of the block, in ``[0, C)``.  Only consulted for nodes whose
        action is not ``ACT_IDLE``.  A batched ``(B, K, n)`` form is accepted
        too — see Notes.
    actions:
        ``(K, n)`` (or batched ``(B, K, n)``) int8 array of ``ACT_*`` codes.
    jammed:
        The adversary's mask for the block: a dense ``(K, C)`` boolean array
        or a sparse :class:`repro.sim.jam.JamBlock`.  In the batched form,
        a dense ``(B, K, C)`` array or a lane-stacked JamBlock of ``B*K``
        rows (see :meth:`repro.sim.jam.JamBlock.stack`).
    check:
        When true, validate shapes/ranges (cheap but not free; used by tests).

    Returns
    -------
    ``(K, n)`` (batched: ``(B, K, n)``) int8 array of ``FB_*`` codes.  Nodes
    that did not listen get ``FB_NONE``.

    Notes
    -----
    Two code paths, same semantics (tests cross-check them):

    * **dense** (K*C small): one flat ``np.bincount`` per payload over a
      (K, C) grid, then gather at listener positions — O(K·(n + C));
    * **sparse** (K*C large): outcomes are computed only at the <= K·n
      (slot, channel) keys actually touched by a non-idle node, with jamming
      answered by the JamBlock's binary search — O(K·n·log) independent of C.

    **Batched (lane) form.**  Slots are resolved independently, so a batch of
    ``B`` concurrent trial lanes is exactly a block of ``B*K`` rows: the
    3-D inputs flatten lane-major and the flat bincount key becomes
    ``lane*K*C + slot*C + channel``.  One kernel pass resolves every lane —
    per-lane semantics are bit-identical to ``B`` scalar calls (see
    DESIGN.md section 6).
    """
    if actions.ndim == 3:
        B, K, n = actions.shape
        jam = JamBlock.coerce(jammed)
        if jam.K != B * K:
            raise ValueError(
                f"batched jam block has {jam.K} rows, expected B*K = {B * K}"
            )
        flat_fb = resolve_block(
            np.ascontiguousarray(channels).reshape(B * K, n),
            np.ascontiguousarray(actions).reshape(B * K, n),
            jam,
            check=check,
        )
        return flat_fb.reshape(B, K, n)
    jam = JamBlock.coerce(jammed)
    K, n = actions.shape
    C = jam.C
    if check:
        if channels.shape != (K, n):
            raise ValueError(f"channels shape {channels.shape} != {(K, n)}")
        if jam.K != K:
            raise ValueError(f"jam block has {jam.K} slots, actions have {K}")
        busy = actions != ACT_IDLE
        if busy.any():
            chosen = channels[busy]
            if chosen.min() < 0 or chosen.max() >= C:
                raise ValueError("channel index out of range [0, C)")
        if not np.isin(actions, (ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, ACT_SEND_BEACON)).all():
            raise ValueError("invalid action code")

    if K * C <= DENSE_CELL_LIMIT:
        return _resolve_dense(channels, actions, jam.to_dense())
    return _resolve_sparse(channels, actions, jam)


def _resolve_dense(
    channels: np.ndarray, actions: np.ndarray, jammed: np.ndarray
) -> np.ndarray:
    """Dense-grid resolution (small K*C)."""
    K, n = actions.shape
    C = jammed.shape[1]
    # Flat (slot, channel) index for every sender; one bincount per payload.
    row = np.arange(K, dtype=np.int64)[:, None]
    flat = row * C + channels  # (K, n); garbage for idle nodes, never used

    send_msg = actions == ACT_SEND_MSG
    send_beacon = actions == ACT_SEND_BEACON

    msg_counts = np.bincount(flat[send_msg], minlength=K * C).reshape(K, C)
    if send_beacon.any():
        beacon_counts = np.bincount(flat[send_beacon], minlength=K * C).reshape(K, C)
    else:
        beacon_counts = np.zeros((K, C), dtype=np.int64)

    total = msg_counts + beacon_counts
    noisy = jammed | (total >= 2)

    # Per-(slot, channel) outcome grid.
    grid = np.full((K, C), FB_SILENCE, dtype=np.int8)
    grid[(total == 1) & (msg_counts == 1)] = FB_MSG
    grid[(total == 1) & (beacon_counts == 1)] = FB_BEACON
    grid[noisy] = FB_NOISE

    feedback = np.full((K, n), FB_NONE, dtype=np.int8)
    listen = actions == ACT_LISTEN
    if listen.any():
        rows, cols = np.nonzero(listen)
        feedback[rows, cols] = grid[rows, channels[rows, cols]]
    return feedback


def _resolve_sparse(
    channels: np.ndarray, actions: np.ndarray, jam: JamBlock
) -> np.ndarray:
    """Participant-keyed resolution (large C): O(K·n·log), O(K·n) memory."""
    K, n = actions.shape
    C = jam.C
    feedback = np.full((K, n), FB_NONE, dtype=np.int8)
    busy_rows, busy_cols = np.nonzero(actions != ACT_IDLE)
    if busy_rows.size == 0:
        return feedback
    acts = actions[busy_rows, busy_cols]
    keys = busy_rows * np.int64(C) + channels[busy_rows, busy_cols]

    uniq, inv = np.unique(keys, return_inverse=True)
    m = uniq.shape[0]
    msg_counts = np.bincount(inv[acts == ACT_SEND_MSG], minlength=m)
    beacon_counts = np.bincount(inv[acts == ACT_SEND_BEACON], minlength=m)
    total = msg_counts + beacon_counts
    jam_at = jam.lookup_keys(uniq)
    noisy = jam_at | (total >= 2)

    grid = np.full(m, FB_SILENCE, dtype=np.int8)
    grid[(total == 1) & (msg_counts == 1)] = FB_MSG
    grid[(total == 1) & (beacon_counts == 1)] = FB_BEACON
    grid[noisy] = FB_NOISE

    listening = acts == ACT_LISTEN
    feedback[busy_rows[listening], busy_cols[listening]] = grid[inv[listening]]
    return feedback


def resolve_slot(
    channels: np.ndarray,
    actions: np.ndarray,
    jammed: np.ndarray,
) -> np.ndarray:
    """Scalar-friendly single-slot wrapper around :func:`resolve_block`.

    Parameters are the one-slot analogues of :func:`resolve_block`:
    ``channels`` and ``actions`` are ``(n,)``, ``jammed`` is ``(C,)``.
    Used by the readable reference runtime (:mod:`repro.sim.node`).
    """
    fb = resolve_block(
        np.asarray(channels)[None, :],
        np.asarray(actions, dtype=np.int8)[None, :],
        np.asarray(jammed, dtype=bool)[None, :],
    )
    return fb[0]
