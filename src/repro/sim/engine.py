"""The synchronous network engine.

:class:`RadioNetwork` owns the three pieces of global state every protocol
needs — the slot clock, the energy ledger, and the adversary — and exposes a
two-phase block API designed for the vectorized protocol runners:

1. ``jam = net.draw_jamming(K, C)`` — fetch Eve's jamming mask for the next
   ``K`` slots on ``C`` channels.  This *commits Eve's spend immediately*:
   jamming energy is burned whether or not any node listens (she is oblivious
   and cannot react to node behaviour), matching the model.
2. (the protocol resolves the block, possibly re-resolving a tail after a
   status change, reusing the same mask and the same node coin draws), then
3. ``net.commit_block(actions)`` — charge node energy for the final action
   matrix and advance the clock by ``K``.

The draw/commit pairing is enforced at runtime (:class:`BlockProtocolError`)
so a buggy protocol cannot double-charge or skip slots.  Obliviousness is
enforced structurally: adversaries only ever see ``(start_slot, K, C)``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.sim.channel import ACT_LISTEN, ACT_SEND_BEACON, ACT_SEND_MSG
from repro.sim.jam import JamBlock
from repro.sim.metrics import BatchEnergyLedger, EnergyLedger
from repro.sim.rng import RandomFabric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adversary.base import Adversary

__all__ = ["RadioNetwork", "BatchNetwork", "SlotLimitExceeded", "BlockProtocolError"]


class SlotLimitExceeded(RuntimeError):
    """The execution ran past ``max_slots`` without terminating.

    Raised by :meth:`RadioNetwork.commit_block`.  Protocol runners catch this
    and report a truncated (non-completed) result instead of spinning forever
    — relevant when the adversary is strong enough to block termination at
    the configured scale.
    """


class BlockProtocolError(RuntimeError):
    """The draw_jamming / commit_block pairing discipline was violated."""


class RadioNetwork:
    """Synchronous single-hop multi-channel radio network (paper section 3).

    Parameters
    ----------
    n:
        Number of honest nodes.  Node 0 is the source by library convention.
    adversary:
        An oblivious jammer (see :mod:`repro.adversary`); ``None`` means no
        jamming at all.
    seed:
        Root seed; the per-protocol node coins are drawn from
        ``fabric.generator("nodes")`` so that a network seed fully determines
        the execution (the adversary carries its own stream).
    max_slots:
        Safety cap on the global clock.
    """

    def __init__(
        self,
        n: int,
        adversary: Optional["Adversary"] = None,
        *,
        seed: int = 0,
        max_slots: int = 50_000_000,
        listen_cost: float = 1.0,
        send_cost: float = 1.0,
        jam_cost: float = 1.0,
    ):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes (source + 1)")
        self.n = int(n)
        self.adversary = adversary
        self.fabric = RandomFabric(seed)
        self.rng = self.fabric.generator("nodes")
        # Non-unit action costs implement the paper's footnote 1 (different
        # constants per action change nothing structural); see EnergyLedger.
        self.energy = EnergyLedger(
            self.n, listen_cost=listen_cost, send_cost=send_cost, jam_cost=jam_cost
        )
        self.max_slots = int(max_slots)
        self._pending_block: Optional[int] = None  # K of the drawn block

    # -- clock -----------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Index of the next slot to be simulated."""
        return self.energy.slots

    # -- block API ---------------------------------------------------------------
    def draw_jamming(self, block_slots: int, num_channels: int) -> JamBlock:
        """Return Eve's jamming for the next ``K`` slots as a
        :class:`repro.sim.jam.JamBlock` (adversaries may return dense masks
        or JamBlocks; both are normalized here).

        Charges Eve one unit per jammed channel-slot immediately.  Must be
        followed by exactly one :meth:`commit_block` of the same length.
        """
        if self._pending_block is not None:
            raise BlockProtocolError("draw_jamming called twice without commit_block")
        K = int(block_slots)
        C = int(num_channels)
        if K <= 0 or C <= 0:
            raise ValueError("block_slots and num_channels must be positive")
        if self.adversary is None:
            jam = JamBlock.empty(K, C)
        else:
            jam = JamBlock.coerce(self.adversary.jam_block(self.clock, K, C))
            if jam.K != K or jam.C != C:
                raise ValueError(
                    f"adversary returned jamming for (K={jam.K}, C={jam.C}), "
                    f"expected (K={K}, C={C})"
                )
        self.energy.charge_adversary(jam.total())
        self._pending_block = K
        return jam

    def commit_block(self, actions: np.ndarray, *, slots_per_row: int = 1) -> None:
        """Charge node energy for the block's final actions and advance time.

        ``actions`` is the ``(K, n)`` int8 matrix the protocol actually
        executed (after any tail re-resolution).  Listen and send each cost
        one unit; idle is free.

        ``slots_per_row`` supports the round-based channel-limited protocols
        (paper Fig. 5): one action row then stands for a *round* of
        ``slots_per_row`` physical slots in which the node acts at most once.
        The jamming drawn for the block must cover ``K * slots_per_row``
        physical slots.
        """
        if self._pending_block is None:
            raise BlockProtocolError("commit_block called without draw_jamming")
        if slots_per_row <= 0:
            raise ValueError("slots_per_row must be positive")
        K = int(actions.shape[0]) * int(slots_per_row)
        if K != self._pending_block:
            raise BlockProtocolError(
                f"committed {K} physical slots but drew jamming for {self._pending_block}"
            )
        if actions.shape[1] != self.n:
            raise ValueError(f"actions has {actions.shape[1]} columns, expected {self.n}")
        listen = (actions == ACT_LISTEN).sum(axis=0)
        send = ((actions == ACT_SEND_MSG) | (actions == ACT_SEND_BEACON)).sum(axis=0)
        self.energy.charge_nodes(listen, send)
        self.energy.advance(K)
        self._pending_block = None
        if self.energy.slots > self.max_slots:
            raise SlotLimitExceeded(
                f"execution exceeded max_slots={self.max_slots} "
                f"(adversary too strong for this scale, or a termination bug)"
            )

    def abort_block(self) -> None:
        """Discard a drawn-but-uncommitted block (used only by error paths)."""
        self._pending_block = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RadioNetwork(n={self.n}, clock={self.clock}, adversary={self.adversary!r})"


class BatchNetwork:
    """``B`` independent :class:`RadioNetwork` executions driven in lockstep.

    One lane = one seeded trial: its own node generator, its own adversary
    instance, its own clock, and its own column set in a
    :class:`repro.sim.metrics.BatchEnergyLedger`.  Lanes never interact —
    batching is purely an execution-layer move that amortizes per-block
    interpreter and kernel overhead across trials (DESIGN.md section 6).

    The block API mirrors :class:`RadioNetwork`'s draw/commit discipline, but
    every call takes ``lane_ids`` — the (sorted) indices of lanes taking part
    in the block.  Finished or truncated lanes are simply omitted from later
    calls: their clocks freeze and their books stop changing, exactly as if
    their scalar execution had ended.

    Determinism contract: lane ``l`` of a :class:`BatchNetwork` built with
    ``seeds[l]`` and ``adversaries[l]`` produces draws bit-identical to
    ``RadioNetwork(n, adversaries[l], seed=seeds[l])``, because each lane's
    generator is constructed the same way and is consumed in the same
    per-lane order (a lane's stream never observes other lanes).

    Parameters
    ----------
    n:
        Number of honest nodes per lane (node 0 is the source).
    seeds:
        Per-lane root seeds; lane count ``B = len(seeds)``.
    adversaries:
        Per-lane jammers (``None`` entries mean no jamming; ``None`` for the
        whole argument means no jamming anywhere).  Each non-``None`` entry
        must be a distinct object — adversaries carry per-execution state.
    max_slots:
        Safety cap applied per lane — a scalar for a uniform cap or one
        value per lane (continuous batching refills a slot with a trial
        that may carry its own cap); :meth:`commit_block` reports (rather
        than raises) per-lane overruns so one runaway lane cannot abort the
        batch.
    """

    def __init__(
        self,
        n: int,
        seeds,
        adversaries=None,
        *,
        max_slots: int = 50_000_000,
        listen_cost: float = 1.0,
        send_cost: float = 1.0,
        jam_cost: float = 1.0,
    ):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes (source + 1)")
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("need at least one lane")
        self.n = int(n)
        self.B = len(seeds)
        if adversaries is None:
            adversaries = [None] * self.B
        adversaries = list(adversaries)
        if len(adversaries) != self.B:
            raise ValueError(
                f"{len(adversaries)} adversaries for {self.B} lanes (need one per lane)"
            )
        live_ids = [id(a) for a in adversaries if a is not None]
        if len(set(live_ids)) != len(live_ids):
            raise ValueError("each lane needs its own adversary instance (state!)")
        self.adversaries = adversaries
        self.rngs = [RandomFabric(s).generator("nodes") for s in seeds]
        self.energy = BatchEnergyLedger(
            self.B, self.n, listen_cost=listen_cost, send_cost=send_cost, jam_cost=jam_cost
        )
        cap = np.asarray(max_slots, dtype=np.int64)
        if cap.ndim == 0:
            cap = np.full(self.B, int(cap), dtype=np.int64)
        elif cap.shape != (self.B,):
            raise ValueError(
                f"max_slots shaped {cap.shape}, expected a scalar or ({self.B},)"
            )
        else:
            cap = cap.copy()
        self.max_slots = cap
        self._pending: Optional[tuple] = None  # (lane_ids, physical K)

    # -- clocks ----------------------------------------------------------------
    @property
    def clocks(self) -> np.ndarray:
        """``(B,)`` per-lane next-slot indices (treat as read-only)."""
        return self.energy.slots

    # -- per-lane randomness ---------------------------------------------------
    def draw_channels(self, lane_ids: np.ndarray, block_slots: int, num_channels: int) -> np.ndarray:
        """Stacked per-lane channel draws: ``(len(lane_ids), K, n)`` int32.

        Lane ``l``'s slice comes from lane ``l``'s own generator with the
        same call a scalar protocol makes, so per-lane streams match the
        scalar path exactly.
        """
        K = int(block_slots)
        out = np.empty((len(lane_ids), K, self.n), dtype=np.int32)
        for j, l in enumerate(lane_ids):
            out[j] = self.rngs[l].integers(0, num_channels, size=(K, self.n), dtype=np.int32)
        return out

    def draw_coins(self, lane_ids: np.ndarray, block_slots: int) -> np.ndarray:
        """Stacked per-lane coin draws: ``(len(lane_ids), K, n)`` float64."""
        K = int(block_slots)
        out = np.empty((len(lane_ids), K, self.n), dtype=np.float64)
        for j, l in enumerate(lane_ids):
            # filling the slice in place consumes the stream exactly like
            # random((K, n)) would, without the temporary + copy
            self.rngs[l].random(out=out[j])
        return out

    # -- block API ---------------------------------------------------------------
    def draw_jamming(
        self, lane_ids: np.ndarray, block_slots: int, num_channels: int
    ) -> JamBlock:
        """Eve's jamming for the next ``K`` slots of every listed lane, as one
        lane-stacked :class:`repro.sim.jam.JamBlock` of ``len(lane_ids) * K``
        rows (lane-major, matching the batched kernel's key layout).

        Charges each lane's adversary spend immediately, like the scalar
        engine.  Must be followed by exactly one :meth:`commit_block` over
        the same lanes and length.
        """
        if self._pending is not None:
            raise BlockProtocolError("draw_jamming called twice without commit_block")
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        K = int(block_slots)
        C = int(num_channels)
        if lane_ids.size == 0:
            raise ValueError("need at least one lane in the block")
        if K <= 0 or C <= 0:
            raise ValueError("block_slots and num_channels must be positive")
        blocks = []
        totals = np.zeros(lane_ids.size, dtype=np.int64)
        for j, l in enumerate(lane_ids):
            adversary = self.adversaries[l]
            if adversary is None:
                jam = JamBlock.empty(K, C)
            else:
                jam = JamBlock.coerce(
                    adversary.jam_block(int(self.energy.slots[l]), K, C)
                )
                if jam.K != K or jam.C != C:
                    raise ValueError(
                        f"adversary of lane {int(l)} returned jamming for "
                        f"(K={jam.K}, C={jam.C}), expected (K={K}, C={C})"
                    )
            totals[j] = jam.total()
            blocks.append(jam)
        self.energy.charge_adversary(lane_ids, totals)
        self._pending = (lane_ids, K)
        return JamBlock.stack(blocks)

    def commit_block(
        self, lane_ids: np.ndarray, actions: np.ndarray, *, slots_per_row: int = 1
    ) -> np.ndarray:
        """Charge node energy for the lanes' final actions and advance time.

        ``actions`` is ``(len(lane_ids), K, n)``.  Returns a boolean overrun
        mask: ``True`` where a lane's clock just passed ``max_slots`` — the
        per-lane analogue of :class:`SlotLimitExceeded` (callers mask those
        lanes out and report them truncated; the batch itself continues).
        """
        if self._pending is None:
            raise BlockProtocolError("commit_block called without draw_jamming")
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        pending_ids, pending_K = self._pending
        if slots_per_row <= 0:
            raise ValueError("slots_per_row must be positive")
        if not np.array_equal(lane_ids, pending_ids):
            raise BlockProtocolError("commit_block lanes differ from draw_jamming lanes")
        K = int(actions.shape[1]) * int(slots_per_row)
        if K != pending_K:
            raise BlockProtocolError(
                f"committed {K} physical slots but drew jamming for {pending_K}"
            )
        if actions.shape[0] != lane_ids.size or actions.shape[2] != self.n:
            raise ValueError(
                f"actions shaped {actions.shape}, expected "
                f"({lane_ids.size}, K, {self.n})"
            )
        listen = (actions == ACT_LISTEN).sum(axis=1)
        send = ((actions == ACT_SEND_MSG) | (actions == ACT_SEND_BEACON)).sum(axis=1)
        return self.commit_counts(
            lane_ids, listen, send, int(actions.shape[1]), slots_per_row=slots_per_row
        )

    def commit_counts(
        self,
        lane_ids: np.ndarray,
        listen_counts: np.ndarray,
        send_counts: np.ndarray,
        block_rows: int,
        *,
        slots_per_row: int = 1,
    ) -> np.ndarray:
        """Commit a block from per-node action *counts* instead of matrices.

        The steady-state kernel (DESIGN.md section 6) never materializes
        action matrices — it derives each node's listen/send slot counts
        straight from the coin draws — so the engine accepts the counts
        directly.  Semantically identical to :meth:`commit_block` on the
        matrix those counts summarize; same pairing discipline, same overrun
        mask.
        """
        if self._pending is None:
            raise BlockProtocolError("commit called without draw_jamming")
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        pending_ids, pending_K = self._pending
        if slots_per_row <= 0:
            raise ValueError("slots_per_row must be positive")
        if not np.array_equal(lane_ids, pending_ids):
            raise BlockProtocolError("commit lanes differ from draw_jamming lanes")
        K = int(block_rows) * int(slots_per_row)
        if K != pending_K:
            raise BlockProtocolError(
                f"committed {K} physical slots but drew jamming for {pending_K}"
            )
        if listen_counts.shape != (lane_ids.size, self.n) or send_counts.shape != (
            lane_ids.size,
            self.n,
        ):
            raise ValueError(
                f"counts shaped {listen_counts.shape}/{send_counts.shape}, "
                f"expected ({lane_ids.size}, {self.n})"
            )
        self.energy.charge_nodes(lane_ids, listen_counts, send_counts)
        self.energy.advance(lane_ids, K)
        self._pending = None
        return self.energy.slots[lane_ids] > self.max_slots[lane_ids]

    # -- continuous lane batching (ragged blocks + slot reuse) -----------------
    def replace_lane(self, lane: int, seed: int, adversary=None, *, max_slots=None) -> None:
        """Reuse one lane slot for a fresh trial: new generator, new (reset)
        adversary, zeroed books, clock back to 0.

        The slot's history is erased — exactly as if the :class:`BatchNetwork`
        had been built with this (seed, adversary) in that position from the
        start, which is what makes refill schedule-invariant (a lane's stream
        never observes other lanes, so *when* a slot is recycled cannot leak
        into the trial it hosts).
        """
        if self._pending is not None:
            raise BlockProtocolError("replace_lane during a drawn-but-uncommitted block")
        lane = int(lane)
        if not 0 <= lane < self.B:
            raise ValueError(f"lane {lane} out of range for B={self.B}")
        if adversary is not None:
            for other, existing in enumerate(self.adversaries):
                if existing is adversary and other != lane:
                    raise ValueError("each lane needs its own adversary instance (state!)")
            adversary.reset()
        self.adversaries[lane] = adversary
        self.rngs[lane] = RandomFabric(int(seed)).generator("nodes")
        self.energy.reset_lane(lane)
        if max_slots is not None:
            self.max_slots[lane] = int(max_slots)

    def draw_channels_ragged(
        self, lane_ids: np.ndarray, block_rows: np.ndarray, num_channels
    ) -> np.ndarray:
        """Concatenated per-lane channel draws: ``(sum(block_rows), n)`` int32,
        lane-major.  ``block_rows`` gives each listed lane its own row count
        (the ragged analogue of :meth:`draw_channels`); ``num_channels`` is a
        scalar or one channel count per lane.  Lane ``l``'s chunk comes from
        lane ``l``'s own generator with the same call a scalar protocol makes.
        """
        rows = np.asarray(block_rows, dtype=np.int64)
        Cs = np.broadcast_to(
            np.asarray(num_channels, dtype=np.int64), rows.shape
        )
        out = np.empty((int(rows.sum()), self.n), dtype=np.int32)
        pos = 0
        for l, K, C in zip(lane_ids, rows, Cs):
            out[pos : pos + K] = self.rngs[l].integers(
                0, int(C), size=(int(K), self.n), dtype=np.int32
            )
            pos += int(K)
        return out

    def draw_coins_ragged(self, lane_ids: np.ndarray, block_rows: np.ndarray) -> np.ndarray:
        """Concatenated per-lane coin draws: ``(sum(block_rows), n)`` float64."""
        rows = np.asarray(block_rows, dtype=np.int64)
        out = np.empty((int(rows.sum()), self.n), dtype=np.float64)
        pos = 0
        for l, K in zip(lane_ids, rows):
            # filling the chunk in place consumes the stream exactly like
            # random((K, n)) would, without the temporary + copy
            self.rngs[l].random(out=out[pos : pos + int(K)])
            pos += int(K)
        return out

    def draw_jamming_ragged(
        self, lane_ids: np.ndarray, block_rows: np.ndarray, num_channels
    ) -> list:
        """Eve's jamming for a ragged block: one :class:`JamBlock` per listed
        lane (lane ``l`` covering its own ``block_rows[l]`` physical slots on
        its own channel count).  Charges each lane's spend immediately; must
        be followed by exactly one :meth:`commit_counts_ragged` over the same
        lanes and row counts.  The per-lane blocks are returned unstacked
        because channel counts may differ across lanes (the adv lattice) —
        callers with a uniform C can ``JamBlock.stack`` them.
        """
        if self._pending is not None:
            raise BlockProtocolError("draw_jamming called twice without commit")
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        rows = np.asarray(block_rows, dtype=np.int64)
        if lane_ids.size == 0:
            raise ValueError("need at least one lane in the block")
        if lane_ids.shape != rows.shape:
            raise ValueError("block_rows must give one row count per lane")
        Cs = np.broadcast_to(np.asarray(num_channels, dtype=np.int64), rows.shape)
        if (rows <= 0).any() or (Cs <= 0).any():
            raise ValueError("block_slots and num_channels must be positive")
        blocks = []
        totals = np.zeros(lane_ids.size, dtype=np.int64)
        for j, (l, K, C) in enumerate(zip(lane_ids, rows, Cs)):
            adversary = self.adversaries[l]
            if adversary is None:
                jam = JamBlock.empty(int(K), int(C))
            else:
                jam = JamBlock.coerce(
                    adversary.jam_block(int(self.energy.slots[l]), int(K), int(C))
                )
                if jam.K != int(K) or jam.C != int(C):
                    raise ValueError(
                        f"adversary of lane {int(l)} returned jamming for "
                        f"(K={jam.K}, C={jam.C}), expected (K={int(K)}, C={int(C)})"
                    )
            totals[j] = jam.total()
            blocks.append(jam)
        self.energy.charge_adversary(lane_ids, totals)
        self._pending = (lane_ids, rows)
        return blocks

    def commit_counts_ragged(
        self,
        lane_ids: np.ndarray,
        listen_counts: np.ndarray,
        send_counts: np.ndarray,
        block_rows: np.ndarray,
        *,
        slots_per_row: int = 1,
    ) -> np.ndarray:
        """Commit a ragged block from per-node action counts; same pairing
        discipline and per-lane overrun mask as :meth:`commit_counts`, with
        each lane advancing by its own ``block_rows[l] * slots_per_row``."""
        if self._pending is None:
            raise BlockProtocolError("commit called without draw_jamming")
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        rows = np.asarray(block_rows, dtype=np.int64)
        pending_ids, pending_rows = self._pending
        if slots_per_row <= 0:
            raise ValueError("slots_per_row must be positive")
        if not np.array_equal(lane_ids, pending_ids):
            raise BlockProtocolError("commit lanes differ from draw_jamming lanes")
        physical = rows * int(slots_per_row)
        if not np.array_equal(physical, np.broadcast_to(pending_rows, physical.shape)):
            raise BlockProtocolError(
                f"committed {physical.tolist()} physical slots but drew jamming "
                f"for {np.asarray(pending_rows).tolist()}"
            )
        if listen_counts.shape != (lane_ids.size, self.n) or send_counts.shape != (
            lane_ids.size,
            self.n,
        ):
            raise ValueError(
                f"counts shaped {listen_counts.shape}/{send_counts.shape}, "
                f"expected ({lane_ids.size}, {self.n})"
            )
        self.energy.charge_nodes(lane_ids, listen_counts, send_counts)
        self.energy.advance(lane_ids, physical)
        self._pending = None
        return self.energy.slots[lane_ids] > self.max_slots[lane_ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchNetwork(n={self.n}, B={self.B}, clocks={self.clocks.tolist()})"
