"""The synchronous network engine.

:class:`RadioNetwork` owns the three pieces of global state every protocol
needs — the slot clock, the energy ledger, and the adversary — and exposes a
two-phase block API designed for the vectorized protocol runners:

1. ``jam = net.draw_jamming(K, C)`` — fetch Eve's jamming mask for the next
   ``K`` slots on ``C`` channels.  This *commits Eve's spend immediately*:
   jamming energy is burned whether or not any node listens (she is oblivious
   and cannot react to node behaviour), matching the model.
2. (the protocol resolves the block, possibly re-resolving a tail after a
   status change, reusing the same mask and the same node coin draws), then
3. ``net.commit_block(actions)`` — charge node energy for the final action
   matrix and advance the clock by ``K``.

The draw/commit pairing is enforced at runtime (:class:`BlockProtocolError`)
so a buggy protocol cannot double-charge or skip slots.  Obliviousness is
enforced structurally: adversaries only ever see ``(start_slot, K, C)``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.sim.channel import ACT_LISTEN, ACT_SEND_BEACON, ACT_SEND_MSG
from repro.sim.jam import JamBlock
from repro.sim.metrics import EnergyLedger
from repro.sim.rng import RandomFabric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adversary.base import Adversary

__all__ = ["RadioNetwork", "SlotLimitExceeded", "BlockProtocolError"]


class SlotLimitExceeded(RuntimeError):
    """The execution ran past ``max_slots`` without terminating.

    Raised by :meth:`RadioNetwork.commit_block`.  Protocol runners catch this
    and report a truncated (non-completed) result instead of spinning forever
    — relevant when the adversary is strong enough to block termination at
    the configured scale.
    """


class BlockProtocolError(RuntimeError):
    """The draw_jamming / commit_block pairing discipline was violated."""


class RadioNetwork:
    """Synchronous single-hop multi-channel radio network (paper section 3).

    Parameters
    ----------
    n:
        Number of honest nodes.  Node 0 is the source by library convention.
    adversary:
        An oblivious jammer (see :mod:`repro.adversary`); ``None`` means no
        jamming at all.
    seed:
        Root seed; the per-protocol node coins are drawn from
        ``fabric.generator("nodes")`` so that a network seed fully determines
        the execution (the adversary carries its own stream).
    max_slots:
        Safety cap on the global clock.
    """

    def __init__(
        self,
        n: int,
        adversary: Optional["Adversary"] = None,
        *,
        seed: int = 0,
        max_slots: int = 50_000_000,
        listen_cost: float = 1.0,
        send_cost: float = 1.0,
        jam_cost: float = 1.0,
    ):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes (source + 1)")
        self.n = int(n)
        self.adversary = adversary
        self.fabric = RandomFabric(seed)
        self.rng = self.fabric.generator("nodes")
        # Non-unit action costs implement the paper's footnote 1 (different
        # constants per action change nothing structural); see EnergyLedger.
        self.energy = EnergyLedger(
            self.n, listen_cost=listen_cost, send_cost=send_cost, jam_cost=jam_cost
        )
        self.max_slots = int(max_slots)
        self._pending_block: Optional[int] = None  # K of the drawn block

    # -- clock -----------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Index of the next slot to be simulated."""
        return self.energy.slots

    # -- block API ---------------------------------------------------------------
    def draw_jamming(self, block_slots: int, num_channels: int) -> JamBlock:
        """Return Eve's jamming for the next ``K`` slots as a
        :class:`repro.sim.jam.JamBlock` (adversaries may return dense masks
        or JamBlocks; both are normalized here).

        Charges Eve one unit per jammed channel-slot immediately.  Must be
        followed by exactly one :meth:`commit_block` of the same length.
        """
        if self._pending_block is not None:
            raise BlockProtocolError("draw_jamming called twice without commit_block")
        K = int(block_slots)
        C = int(num_channels)
        if K <= 0 or C <= 0:
            raise ValueError("block_slots and num_channels must be positive")
        if self.adversary is None:
            jam = JamBlock.empty(K, C)
        else:
            jam = JamBlock.coerce(self.adversary.jam_block(self.clock, K, C))
            if jam.K != K or jam.C != C:
                raise ValueError(
                    f"adversary returned jamming for (K={jam.K}, C={jam.C}), "
                    f"expected (K={K}, C={C})"
                )
        self.energy.charge_adversary(jam.total())
        self._pending_block = K
        return jam

    def commit_block(self, actions: np.ndarray, *, slots_per_row: int = 1) -> None:
        """Charge node energy for the block's final actions and advance time.

        ``actions`` is the ``(K, n)`` int8 matrix the protocol actually
        executed (after any tail re-resolution).  Listen and send each cost
        one unit; idle is free.

        ``slots_per_row`` supports the round-based channel-limited protocols
        (paper Fig. 5): one action row then stands for a *round* of
        ``slots_per_row`` physical slots in which the node acts at most once.
        The jamming drawn for the block must cover ``K * slots_per_row``
        physical slots.
        """
        if self._pending_block is None:
            raise BlockProtocolError("commit_block called without draw_jamming")
        if slots_per_row <= 0:
            raise ValueError("slots_per_row must be positive")
        K = int(actions.shape[0]) * int(slots_per_row)
        if K != self._pending_block:
            raise BlockProtocolError(
                f"committed {K} physical slots but drew jamming for {self._pending_block}"
            )
        if actions.shape[1] != self.n:
            raise ValueError(f"actions has {actions.shape[1]} columns, expected {self.n}")
        listen = (actions == ACT_LISTEN).sum(axis=0)
        send = ((actions == ACT_SEND_MSG) | (actions == ACT_SEND_BEACON)).sum(axis=0)
        self.energy.charge_nodes(listen, send)
        self.energy.advance(K)
        self._pending_block = None
        if self.energy.slots > self.max_slots:
            raise SlotLimitExceeded(
                f"execution exceeded max_slots={self.max_slots} "
                f"(adversary too strong for this scale, or a termination bug)"
            )

    def abort_block(self) -> None:
        """Discard a drawn-but-uncommitted block (used only by error paths)."""
        self._pending_block = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RadioNetwork(n={self.n}, clock={self.clock}, adversary={self.adversary!r})"
