"""Energy and time accounting.

The resource-competitive framework (paper Def. 3.1) is entirely about energy:
an algorithm is (rho, tau)-resource-competitive if every honest node's cost is
at most ``rho(T) + tau`` where ``T`` is the adversary's spend.  This module
keeps the books: per-node listen/send counts, the adversary's channel-slots,
and the global slot clock, so experiments can report exact (not sampled)
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EnergyLedger", "BatchEnergyLedger", "CostSummary"]


@dataclass
class CostSummary:
    """Immutable snapshot of an execution's resource usage."""

    slots: int
    max_node_cost: float
    mean_node_cost: float
    total_node_cost: float
    adversary_cost: float

    @property
    def competitive_ratio(self) -> float:
        """``max_u cost(u) / T`` — should vanish as T grows for competitive
        algorithms (modulo the additive tau term).  ``inf`` when T == 0."""
        if self.adversary_cost == 0:
            return float("inf")
        return self.max_node_cost / self.adversary_cost


class EnergyLedger:
    """Per-node and adversary energy books for one execution.

    Broadcast and listen both cost one unit per slot by default (paper
    section 3); the ledger tracks the two action kinds separately because
    several lemmas reason about listening budgets specifically (e.g. Lemma
    4.2 counts noisy *listens*).

    **Weighted costs.**  The paper's footnote 1 observes that letting the
    three actions cost *different constants* does not affect the results.
    The ledger supports that generalization: ``listen_cost`` / ``send_cost``
    scale the per-node books and ``jam_cost`` scales Eve's — slot *counts*
    stay raw so the weighting is purely a reporting concern, and the
    footnote's claim is itself tested (see
    ``tests/sim/test_weighted_costs.py``).

    The ledger is written by :class:`repro.sim.engine.RadioNetwork`; protocol
    and analysis code should treat it as read-only.
    """

    def __init__(
        self,
        n: int,
        *,
        listen_cost: float = 1.0,
        send_cost: float = 1.0,
        jam_cost: float = 1.0,
    ):
        if n <= 0:
            raise ValueError("need at least one node")
        if min(listen_cost, send_cost, jam_cost) < 0:
            raise ValueError("energy weights must be non-negative")
        self.n = int(n)
        self.listen_cost = float(listen_cost)
        self.send_cost = float(send_cost)
        self.jam_cost = float(jam_cost)
        self.listen_slots = np.zeros(self.n, dtype=np.int64)
        self.send_slots = np.zeros(self.n, dtype=np.int64)
        self.jammed_channel_slots = 0
        self.slots = 0

    # -- writers (engine only) ------------------------------------------------
    def charge_nodes(self, listen_counts: np.ndarray, send_counts: np.ndarray) -> None:
        """Add per-node listen/send slot counts for a committed block."""
        self.listen_slots += listen_counts
        self.send_slots += send_counts

    def charge_adversary(self, channel_slots: int) -> None:
        """Add jammed channel-slots to Eve's books."""
        self.jammed_channel_slots += int(channel_slots)

    def advance(self, slots: int) -> None:
        """Advance the global clock by ``slots``."""
        self.slots += int(slots)

    # -- readers --------------------------------------------------------------
    @property
    def adversary_spend(self):
        """Eve's total energy (jam weight applied).  Integral under unit
        weights, so existing exact-equality call sites keep working."""
        spend = self.jam_cost * self.jammed_channel_slots
        return int(spend) if self.jam_cost == 1.0 else spend

    @property
    def node_cost(self) -> np.ndarray:
        """Per-node total energy (listen + send, weights applied).
        Integral dtype under unit weights."""
        if self.listen_cost == 1.0 and self.send_cost == 1.0:
            return self.listen_slots + self.send_slots
        return self.listen_cost * self.listen_slots + self.send_cost * self.send_slots

    @property
    def max_node_cost(self):
        m = self.node_cost.max()
        return int(m) if float(m).is_integer() else float(m)

    @property
    def mean_node_cost(self) -> float:
        return float(self.node_cost.mean())

    def summary(self) -> CostSummary:
        cost = self.node_cost
        return CostSummary(
            slots=self.slots,
            max_node_cost=float(cost.max()),
            mean_node_cost=float(cost.mean()),
            total_node_cost=float(cost.sum()),
            adversary_cost=float(self.adversary_spend),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnergyLedger(n={self.n}, slots={self.slots}, "
            f"max_node_cost={self.max_node_cost}, eve={self.adversary_spend})"
        )


class BatchEnergyLedger:
    """Per-lane energy books: :class:`EnergyLedger` with a leading lane axis.

    The batched execution layer (DESIGN.md section 6) runs ``B`` independent
    trials ("lanes") through one vectorized pass; each lane needs exactly the
    accounting :class:`EnergyLedger` keeps for one execution.  Rather than
    ``B`` ledger objects, the books are stored as arrays with a lane axis —
    ``(B, n)`` listen/send slot counts, ``(B,)`` adversary spend and clocks —
    so the engine can charge a whole block of lanes with one add.

    All writer methods take ``lane_ids`` (the active-lane index array) because
    finished lanes are masked out of a batch rather than blocking it; their
    rows simply stop being touched.  :meth:`lane_node_cost` /
    :meth:`lane_adversary_spend` reproduce :attr:`EnergyLedger.node_cost` /
    :attr:`EnergyLedger.adversary_spend` bit-for-bit per lane (including the
    integral-dtype-under-unit-weights contract), which is what makes batched
    :class:`repro.core.result.BroadcastResult` rows indistinguishable from
    scalar ones.
    """

    def __init__(
        self,
        lanes: int,
        n: int,
        *,
        listen_cost: float = 1.0,
        send_cost: float = 1.0,
        jam_cost: float = 1.0,
    ):
        if lanes <= 0:
            raise ValueError("need at least one lane")
        if n <= 0:
            raise ValueError("need at least one node")
        if min(listen_cost, send_cost, jam_cost) < 0:
            raise ValueError("energy weights must be non-negative")
        self.B = int(lanes)
        self.n = int(n)
        self.listen_cost = float(listen_cost)
        self.send_cost = float(send_cost)
        self.jam_cost = float(jam_cost)
        self.listen_slots = np.zeros((self.B, self.n), dtype=np.int64)
        self.send_slots = np.zeros((self.B, self.n), dtype=np.int64)
        self.jammed_channel_slots = np.zeros(self.B, dtype=np.int64)
        self.slots = np.zeros(self.B, dtype=np.int64)

    # -- writers (engine only) ------------------------------------------------
    def charge_nodes(
        self, lane_ids: np.ndarray, listen_counts: np.ndarray, send_counts: np.ndarray
    ) -> None:
        """Add per-node listen/send counts for the lanes of a committed block."""
        self.listen_slots[lane_ids] += listen_counts
        self.send_slots[lane_ids] += send_counts

    def charge_adversary(self, lane_ids: np.ndarray, channel_slots: np.ndarray) -> None:
        """Add per-lane jammed channel-slots to Eve's books."""
        self.jammed_channel_slots[lane_ids] += channel_slots

    def advance(self, lane_ids: np.ndarray, slots) -> None:
        """Advance the given lanes' clocks by ``slots`` (scalar, or one
        count per lane for ragged blocks)."""
        self.slots[lane_ids] += np.asarray(slots, dtype=np.int64)

    def reset_lane(self, lane: int) -> None:
        """Zero one lane's books — the freed slot is about to host a fresh
        trial (continuous lane batching, DESIGN.md section 13)."""
        self.listen_slots[lane] = 0
        self.send_slots[lane] = 0
        self.jammed_channel_slots[lane] = 0
        self.slots[lane] = 0

    # -- readers --------------------------------------------------------------
    def lane_node_cost(self, lane: int) -> np.ndarray:
        """One lane's per-node total energy (same contract as
        :attr:`EnergyLedger.node_cost`; a fresh array, safe to hand out)."""
        if self.listen_cost == 1.0 and self.send_cost == 1.0:
            return self.listen_slots[lane] + self.send_slots[lane]
        return (
            self.listen_cost * self.listen_slots[lane]
            + self.send_cost * self.send_slots[lane]
        )

    def lane_adversary_spend(self, lane: int):
        """One lane's Eve spend (integral under unit jam weight, as in
        :attr:`EnergyLedger.adversary_spend`)."""
        spend = self.jam_cost * int(self.jammed_channel_slots[lane])
        return int(spend) if self.jam_cost == 1.0 else spend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchEnergyLedger(B={self.B}, n={self.n}, "
            f"slots={self.slots.tolist()})"
        )
