"""Execution tracing.

Traces are optional (zero overhead when disabled) and exist for two reasons:

* the epidemic-growth experiment (EXP-L4.1) needs the *informed-population
  curve* — how many nodes know the message after each slot — which is interior
  protocol state the result object does not expose; and
* debugging protocol runs slot-structure-by-slot-structure (iterations for
  ``MultiCast``; (epoch, phase, step) for ``MultiCastAdv``).

Protocols emit two record kinds: *growth events* (slot, informed count) are
appended whenever the informed set grows, and *period records* summarize one
iteration/phase with protocol-specific fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["GrowthEvent", "PeriodRecord", "TraceRecorder"]


@dataclass(frozen=True)
class GrowthEvent:
    """The informed population reached ``informed`` at (global) ``slot``."""

    slot: int
    informed: int


@dataclass(frozen=True)
class PeriodRecord:
    """Summary of one protocol period (iteration, or (epoch, phase) pair)."""

    kind: str  #: "iteration" or "phase"
    index: Tuple[int, ...]  #: (i,) for iterations, (i, j) for phases
    start_slot: int
    end_slot: int
    informed_after: int
    active_after: int
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects growth events and period records for one execution.

    Pass an instance as ``trace=`` to any protocol ``run()``; afterwards use
    :meth:`informed_curve` / :attr:`periods` for analysis.
    """

    def __init__(self) -> None:
        self.growth: List[GrowthEvent] = []
        self.periods: List[PeriodRecord] = []

    # -- writers ---------------------------------------------------------------
    def record_growth(self, slot: int, informed: int) -> None:
        self.growth.append(GrowthEvent(int(slot), int(informed)))

    def record_period(
        self,
        kind: str,
        index: Tuple[int, ...],
        start_slot: int,
        end_slot: int,
        informed_after: int,
        active_after: int,
        **detail: Any,
    ) -> None:
        self.periods.append(
            PeriodRecord(
                kind=kind,
                index=tuple(int(x) for x in index),
                start_slot=int(start_slot),
                end_slot=int(end_slot),
                informed_after=int(informed_after),
                active_after=int(active_after),
                detail=dict(detail),
            )
        )

    # -- readers ---------------------------------------------------------------
    def informed_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(slots, informed_counts)`` as step-function sample points.

        The curve starts at the first recorded event (protocols record the
        initial state ``(0, 1)`` — only the source is informed — on startup).
        """
        if not self.growth:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        slots = np.array([e.slot for e in self.growth], dtype=np.int64)
        counts = np.array([e.informed for e in self.growth], dtype=np.int64)
        return slots, counts

    def slots_to_informed(self, fraction: float = 1.0) -> Optional[int]:
        """First slot at which at least ``fraction`` of the final informed
        population knows the message; ``None`` if never recorded."""
        slots, counts = self.informed_curve()
        if counts.size == 0:
            return None
        target = fraction * counts[-1]
        idx = np.nonzero(counts >= target)[0]
        return int(slots[idx[0]]) if idx.size else None

    def periods_of(self, kind: str) -> List[PeriodRecord]:
        return [p for p in self.periods if p.kind == kind]

    def __len__(self) -> int:
        return len(self.growth) + len(self.periods)
