"""Scalar per-node runtime — the readable reference implementation.

The vectorized engine (:mod:`repro.sim.engine` plus the protocol runners in
:mod:`repro.core`) is the fast path.  This module is the slow path: one Python
object per node, one slot per step, written to mirror the paper's pseudocode
line by line.  It exists so tests can cross-validate the two implementations
(same model, radically different code paths) on small instances.

A node protocol implements two callbacks:

* :meth:`NodeProtocol.begin_slot` — decide ``(channel, action)`` for this slot;
* :meth:`NodeProtocol.end_slot` — observe feedback (``FB_*``; ``FB_NONE``
  unless the node listened).

:class:`ScalarNetwork` drives n protocol objects and the adversary through the
shared channel-resolution kernel (:func:`repro.sim.channel.resolve_slot`), and
keeps the same energy books as the fast engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    resolve_slot,
)
from repro.sim.jam import JamBlock
from repro.sim.metrics import EnergyLedger

__all__ = ["NodeProtocol", "ScalarNetwork"]


class NodeProtocol(ABC):
    """Per-node protocol interface for the scalar runtime."""

    @abstractmethod
    def begin_slot(self, slot: int) -> Tuple[int, int]:
        """Return ``(channel, action)`` for this slot.

        ``channel`` is ignored when ``action`` is ``ACT_IDLE``.  A halted node
        should keep returning ``(0, ACT_IDLE)``.
        """

    @abstractmethod
    def end_slot(self, slot: int, feedback: int) -> None:
        """Observe the slot's outcome (``FB_NONE`` unless the node listened)."""

    @property
    @abstractmethod
    def halted(self) -> bool:
        """True once the node has terminated."""


class ScalarNetwork:
    """Slot-by-slot driver for :class:`NodeProtocol` objects.

    Parameters mirror :class:`repro.sim.engine.RadioNetwork`; the adversary is
    queried one slot at a time through the same oblivious interface.
    """

    def __init__(
        self,
        nodes: Sequence[NodeProtocol],
        adversary=None,
        *,
        max_slots: int = 1_000_000,
    ):
        self.nodes: List[NodeProtocol] = list(nodes)
        if len(self.nodes) < 2:
            raise ValueError("broadcast needs at least two nodes")
        self.adversary = adversary
        self.energy = EnergyLedger(len(self.nodes))
        self.max_slots = int(max_slots)
        #: True once :meth:`run` stopped at ``max_slots`` with nodes still
        #: active — the scalar analogue of the batched engine's per-lane
        #: overrun mask (callers report such runs truncated, not completed).
        self.overrun = False

    @property
    def clock(self) -> int:
        return self.energy.slots

    def step(self, num_channels: int) -> np.ndarray:
        """Simulate one slot on ``num_channels`` channels; return feedback.

        Supports both adversary families: oblivious jammers (the block API —
        Eve never sees node behaviour) and reactive jammers (the adaptive
        extension of :mod:`repro.adversary.reactive` — Eve senses which
        channels are busy *this slot* and reacts within it).
        """
        n = len(self.nodes)
        channels = np.zeros(n, dtype=np.int64)
        actions = np.zeros(n, dtype=np.int8)
        for u, node in enumerate(self.nodes):
            ch, act = node.begin_slot(self.clock)
            channels[u] = ch
            actions[u] = act
        if self.adversary is None:
            jam = np.zeros(num_channels, dtype=bool)
        elif hasattr(self.adversary, "jam_slot"):
            sending = (actions == ACT_SEND_MSG) | (actions == ACT_SEND_BEACON)
            busy = np.zeros(num_channels, dtype=bool)
            busy[channels[sending]] = True
            jam = np.asarray(self.adversary.jam_slot(self.clock, busy), dtype=bool)
        else:
            block = JamBlock.coerce(self.adversary.jam_block(self.clock, 1, num_channels))
            jam = block.to_dense()[0]
        self.energy.charge_adversary(int(jam.sum()))
        feedback = resolve_slot(channels, actions, jam)
        listen = (actions == ACT_LISTEN).astype(np.int64)
        send = ((actions == ACT_SEND_MSG) | (actions == ACT_SEND_BEACON)).astype(np.int64)
        self.energy.charge_nodes(listen, send)
        self.energy.advance(1)
        for u, node in enumerate(self.nodes):
            node.end_slot(self.clock - 1, int(feedback[u]))
        return feedback

    def run(self, num_channels, until_all_halted: bool = True) -> int:
        """Run until every node halts (or ``max_slots``); return slots used.

        ``num_channels`` may be an int or a callable ``slot -> int`` for
        protocols whose channel count varies over time (``MultiCastAdv``).

        Hitting ``max_slots`` with nodes still active does not raise (one
        truncated execution should not abort a study), but it is never
        silent either: :attr:`overrun` flips to True, the way
        :meth:`repro.sim.engine.BatchNetwork.commit_block` reports per-lane
        overruns.  Callers must treat such a run as truncated.
        """
        get_channels = num_channels if callable(num_channels) else (lambda _s: num_channels)
        while not all(node.halted for node in self.nodes):
            if self.clock >= self.max_slots:
                self.overrun = True
                break
            self.step(int(get_channels(self.clock)))
        return self.clock
