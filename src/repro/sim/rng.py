"""Deterministic random-number fabric.

Every stochastic component of the library (each protocol run, each adversary,
each trial of an experiment) draws from its own independent NumPy generator.
Streams are spawned from a single root :class:`numpy.random.SeedSequence`, so

* a run is exactly reproducible from ``(seed,)``;
* components cannot accidentally share a stream (which would correlate the
  adversary's coins with the honest nodes' coins and break the oblivious-
  adversary model); and
* trials can be spawned in parallel-safe fashion (SeedSequence spawning is
  collision-resistant by construction).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

import numpy as np

__all__ = ["RandomFabric", "derive_seed"]


def derive_seed(root: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from a root seed and a label path.

    The derivation hashes ``root`` together with the ``repr`` of each label, so
    ``derive_seed(7, "adversary")`` and ``derive_seed(7, "nodes")`` are
    independent for all practical purposes, and the mapping is stable across
    processes and Python versions (it does not use ``hash()``).

    Parameters
    ----------
    root:
        The experiment-level seed.
    labels:
        Any hashable/reprable path components, e.g. ``("trial", 3, "eve")``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


class RandomFabric:
    """A hierarchy of independent, reproducible random generators.

    Example
    -------
    >>> fabric = RandomFabric(seed=42)
    >>> g1 = fabric.generator("nodes")
    >>> g2 = fabric.generator("adversary")
    >>> g1 is g2
    False
    >>> RandomFabric(42).generator("nodes").integers(1 << 30) == \\
    ...     RandomFabric(42).generator("nodes").integers(1 << 30)
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def generator(self, *labels: object) -> np.random.Generator:
        """Return the generator for a label path (same path -> same stream)."""
        return np.random.default_rng(derive_seed(self.seed, *labels))

    def child(self, *labels: object) -> "RandomFabric":
        """Return a sub-fabric rooted at a derived seed."""
        return RandomFabric(derive_seed(self.seed, *labels))

    def spawn(self, count: int, *labels: object) -> List[np.random.Generator]:
        """Return ``count`` independent generators under a common label path."""
        return [self.generator(*labels, i) for i in range(count)]

    def trial_seeds(self, count: int, *labels: object) -> Iterable[int]:
        """Yield ``count`` derived integer seeds (for spawning whole trials)."""
        return [derive_seed(self.seed, *labels, i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomFabric(seed={self.seed})"
