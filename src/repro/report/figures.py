"""Dependency-free SVG scaling plots for the committed record.

The figures under ``experiments/figures/`` are log-log scaling plots —
measured series plus normalized theorem-shape curves — emitted as plain
SVG strings so the record needs no plotting stack and the bytes are a pure
function of the data (``repro report --check`` diffs them like any other
output).  Coordinates are rounded to 0.01 px and every float label goes
through one formatter, so regeneration is byte-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["Series", "svg_lines", "svg_loglog"]

#: Okabe–Ito-ish palette: colorblind-safe, dark enough for white background.
_COLORS = ("#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00")

_W, _H = 720, 440
_ML, _MR, _MT, _MB = 74, 20, 42, 56  # margins: left, right, top, bottom


@dataclass(frozen=True)
class Series:
    """One plotted curve: positive (x, y) points plus a line style."""

    label: str
    x: Sequence[float]
    y: Sequence[float]
    dashed: bool = False  #: dashed = a predicted / fitted shape, solid = measured
    markers: bool = True


def _fnum(v: float) -> str:
    """Stable coordinate formatting (two decimals, no negative zero)."""
    s = f"{v:.2f}"
    return "0.00" if s == "-0.00" else s


def _decade_label(exp: int) -> str:
    return f"1e{exp}"


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _log_range(values: List[float]) -> Tuple[float, float]:
    lo, hi = math.log10(min(values)), math.log10(max(values))
    if hi - lo < 1e-9:  # degenerate: one decade around the single value
        lo, hi = lo - 0.5, hi + 0.5
    pad = 0.06 * (hi - lo)
    return lo - pad, hi + pad


def svg_loglog(
    series: Sequence[Series], *, title: str, xlabel: str, ylabel: str
) -> str:
    """Render a log-log scatter/line chart as a standalone SVG string."""
    if not series:
        raise ValueError("need at least one series")
    xs = [float(v) for s in series for v in s.x]
    ys = [float(v) for s in series for v in s.y]
    if not xs or any(v <= 0 for v in xs + ys):
        raise ValueError("log-log figures need strictly positive data")
    for s in series:
        if len(s.x) != len(s.y) or not len(s.x):
            raise ValueError(f"series {s.label!r}: x and y must be equal-length, non-empty")

    x0, x1 = _log_range(xs)
    y0, y1 = _log_range(ys)
    pw, ph = _W - _ML - _MR, _H - _MT - _MB

    def px(v: float) -> float:
        return _ML + (math.log10(v) - x0) / (x1 - x0) * pw

    def py(v: float) -> float:
        return _MT + (y1 - math.log10(v)) / (y1 - y0) * ph

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="Helvetica,Arial,sans-serif">',
        f'<rect width="{_W}" height="{_H}" fill="#ffffff"/>',
        f'<text x="{_ML}" y="24" font-size="15" fill="#111111">{_esc(title)}</text>',
    ]

    # decade gridlines + tick labels
    for exp in range(math.ceil(x0), math.floor(x1) + 1):
        gx = _fnum(_ML + (exp - x0) / (x1 - x0) * pw)
        out.append(
            f'<line x1="{gx}" y1="{_MT}" x2="{gx}" y2="{_H - _MB}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{gx}" y="{_H - _MB + 18}" font-size="11" fill="#444444" '
            f'text-anchor="middle">{_decade_label(exp)}</text>'
        )
    for exp in range(math.ceil(y0), math.floor(y1) + 1):
        gy = _fnum(_MT + (y1 - exp) / (y1 - y0) * ph)
        out.append(
            f'<line x1="{_ML}" y1="{gy}" x2="{_W - _MR}" y2="{gy}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{_ML - 8}" y="{gy}" font-size="11" fill="#444444" '
            f'text-anchor="end" dominant-baseline="middle">{_decade_label(exp)}</text>'
        )

    # axes frame + labels
    out.append(
        f'<rect x="{_ML}" y="{_MT}" width="{pw}" height="{ph}" fill="none" '
        f'stroke="#333333" stroke-width="1"/>'
    )
    out.append(
        f'<text x="{_ML + pw / 2:.0f}" y="{_H - 14}" font-size="12" fill="#111111" '
        f'text-anchor="middle">{_esc(xlabel)}</text>'
    )
    out.append(
        f'<text x="18" y="{_MT + ph / 2:.0f}" font-size="12" fill="#111111" '
        f'text-anchor="middle" transform="rotate(-90 18 {_MT + ph / 2:.0f})">'
        f"{_esc(ylabel)}</text>"
    )

    # series
    for i, s in enumerate(series):
        color = _COLORS[i % len(_COLORS)]
        points = " ".join(f"{_fnum(px(x))},{_fnum(py(y))}" for x, y in zip(s.x, s.y))
        dash = ' stroke-dasharray="6 4"' if s.dashed else ""
        out.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"{dash}/>'
        )
        if s.markers:
            for x, y in zip(s.x, s.y):
                out.append(
                    f'<circle cx="{_fnum(px(x))}" cy="{_fnum(py(y))}" r="3.5" '
                    f'fill="{color}"/>'
                )

    # legend (top-right, one row per series)
    lx = _W - _MR - 210
    for i, s in enumerate(series):
        color = _COLORS[i % len(_COLORS)]
        ly = _MT + 14 + 18 * i
        dash = ' stroke-dasharray="6 4"' if s.dashed else ""
        out.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 26}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"{dash}/>'
        )
        out.append(
            f'<text x="{lx + 32}" y="{ly}" font-size="11" fill="#111111" '
            f'dominant-baseline="middle">{_esc(s.label)}</text>'
        )

    out.append("</svg>")
    return "\n".join(out) + "\n"


def _lin_range(values: List[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:  # degenerate: pad around the single value
        pad = abs(hi) * 0.5 or 0.5
        return lo - pad, hi + pad
    pad = 0.06 * (hi - lo)
    return lo - pad, hi + pad


def _lin_ticks(lo: float, hi: float) -> List[float]:
    """5-ish round-number ticks covering [lo, hi]."""
    span = hi - lo
    raw = span / 5
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if span / step <= 6:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        ticks.append(0.0 if abs(t) < 1e-12 * span else t)
        t += step
    return ticks


def _tick_label(v: float) -> str:
    if v == int(v) and abs(v) < 1e7:
        return str(int(v))
    return f"{v:g}"


def svg_lines(
    series: Sequence[Series], *, title: str, xlabel: str, ylabel: str
) -> str:
    """Render a linear-axis line chart as a standalone SVG string — the
    telemetry-timeline sibling of :func:`svg_loglog`, with the same
    deterministic-bytes discipline (0.01-px coordinates, one float
    formatter), for data that may touch zero."""
    if not series:
        raise ValueError("need at least one series")
    xs = [float(v) for s in series for v in s.x]
    ys = [float(v) for s in series for v in s.y]
    if not xs:
        raise ValueError("need at least one data point")
    for s in series:
        if len(s.x) != len(s.y) or not len(s.x):
            raise ValueError(f"series {s.label!r}: x and y must be equal-length, non-empty")

    x0, x1 = _lin_range(xs)
    y0, y1 = _lin_range(ys)
    pw, ph = _W - _ML - _MR, _H - _MT - _MB

    def px(v: float) -> float:
        return _ML + (v - x0) / (x1 - x0) * pw

    def py(v: float) -> float:
        return _MT + (y1 - v) / (y1 - y0) * ph

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="Helvetica,Arial,sans-serif">',
        f'<rect width="{_W}" height="{_H}" fill="#ffffff"/>',
        f'<text x="{_ML}" y="24" font-size="15" fill="#111111">{_esc(title)}</text>',
    ]

    for t in _lin_ticks(x0, x1):
        gx = _fnum(px(t))
        out.append(
            f'<line x1="{gx}" y1="{_MT}" x2="{gx}" y2="{_H - _MB}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{gx}" y="{_H - _MB + 18}" font-size="11" fill="#444444" '
            f'text-anchor="middle">{_tick_label(t)}</text>'
        )
    for t in _lin_ticks(y0, y1):
        gy = _fnum(py(t))
        out.append(
            f'<line x1="{_ML}" y1="{gy}" x2="{_W - _MR}" y2="{gy}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{_ML - 8}" y="{gy}" font-size="11" fill="#444444" '
            f'text-anchor="end" dominant-baseline="middle">{_tick_label(t)}</text>'
        )

    out.append(
        f'<rect x="{_ML}" y="{_MT}" width="{pw}" height="{ph}" fill="none" '
        f'stroke="#333333" stroke-width="1"/>'
    )
    out.append(
        f'<text x="{_ML + pw / 2:.0f}" y="{_H - 14}" font-size="12" fill="#111111" '
        f'text-anchor="middle">{_esc(xlabel)}</text>'
    )
    out.append(
        f'<text x="18" y="{_MT + ph / 2:.0f}" font-size="12" fill="#111111" '
        f'text-anchor="middle" transform="rotate(-90 18 {_MT + ph / 2:.0f})">'
        f"{_esc(ylabel)}</text>"
    )

    for i, s in enumerate(series):
        color = _COLORS[i % len(_COLORS)]
        points = " ".join(f"{_fnum(px(x))},{_fnum(py(y))}" for x, y in zip(s.x, s.y))
        dash = ' stroke-dasharray="6 4"' if s.dashed else ""
        out.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"{dash}/>'
        )
        if s.markers:
            for x, y in zip(s.x, s.y):
                out.append(
                    f'<circle cx="{_fnum(px(x))}" cy="{_fnum(py(y))}" r="3.5" '
                    f'fill="{color}"/>'
                )

    lx = _W - _MR - 210
    for i, s in enumerate(series):
        color = _COLORS[i % len(_COLORS)]
        ly = _MT + 14 + 18 * i
        dash = ' stroke-dasharray="6 4"' if s.dashed else ""
        out.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 26}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"{dash}/>'
        )
        out.append(
            f'<text x="{lx + 32}" y="{ly}" font-size="11" fill="#111111" '
            f'dominant-baseline="middle">{_esc(s.label)}</text>'
        )

    out.append("</svg>")
    return "\n".join(out) + "\n"
