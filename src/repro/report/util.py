"""Shared plumbing for the report pipeline: record access and formatting.

:class:`RecordBundle` is the single read path from the committed record —
JSONL campaign stores under ``experiments/`` and the ``BENCH_*.json``
baselines under ``benchmarks/`` — with caching, so a report run reads each
file once no matter how many sections and ledger rows consume it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.analysis.stats import Summary
from repro.exp.registry import ADV_KNOBS
from repro.exp.store import (
    CellStats,
    ResultStore,
    StoppingRecord,
    TrialRecord,
    aggregate,
)

__all__ = ["ADV_ALPHA", "FIXED_T", "ReportError", "RecordBundle", "fmt_pm", "fmt_g"]

#: alpha of the committed MultiCastAdv profile — taken from the registry so a
#: retuned profile cannot silently diverge from the ledger's predicted curves.
ADV_ALPHA = float(ADV_KNOBS["alpha"])

#: Eve's budget in the fixed-T campaigns (gallery/scaling_n/channels specs).
FIXED_T = 100_000


class ReportError(RuntimeError):
    """The record is unreadable or inconsistent with the report config."""


class RecordBundle:
    """Cached access to the committed stores and benchmark baselines."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self._cells: Dict[str, List[CellStats]] = {}
        self._records: Dict[str, List[TrialRecord]] = {}
        self._stopping: Dict[str, List[StoppingRecord]] = {}
        self._bench: Dict[str, dict] = {}

    def _store_path(self, name: str) -> str:
        return os.path.join(self.root, "experiments", f"{name}.jsonl")

    def records(self, name: str) -> List[TrialRecord]:
        """All trial records of one campaign store, sorted by key."""
        if name not in self._records:
            path = self._store_path(name)
            if not os.path.exists(path):
                raise ReportError(
                    f"missing store {os.path.relpath(path, self.root)} — "
                    "run experiments/run_all.sh first"
                )
            self._records[name] = ResultStore(path).records()
        return self._records[name]

    def stopping(self, name: str) -> List[StoppingRecord]:
        """An adaptive campaign's per-cell stopping decisions, sorted by key."""
        if name not in self._stopping:
            path = self._store_path(name)
            if not os.path.exists(path):
                raise ReportError(
                    f"missing store {os.path.relpath(path, self.root)} — "
                    "run experiments/run_all.sh first"
                )
            self._stopping[name] = ResultStore(path).stopping_records()
        return self._stopping[name]

    def cells(self, name: str) -> List[CellStats]:
        """Per-cell aggregates of one campaign store (deterministic order)."""
        if name not in self._cells:
            self._cells[name] = aggregate(self.records(name))
        return self._cells[name]

    def bench(self, name: str) -> dict:
        """The committed ``benchmarks/BENCH_<name>.json`` baseline."""
        if name not in self._bench:
            path = os.path.join(self.root, "benchmarks", f"BENCH_{name}.json")
            if not os.path.exists(path):
                raise ReportError(
                    f"missing benchmark baseline benchmarks/BENCH_{name}.json — "
                    f"regenerate with REPRO_BENCH_JSON=benchmarks PYTHONPATH=src "
                    f"pytest benchmarks/bench_{name}.py"
                )
            with open(path) as fh:
                self._bench[name] = json.load(fh)
        return self._bench[name]


def fmt_pm(s: Summary, digits: int = 3) -> str:
    """``mean ±ci95`` in the record's house style."""
    return f"{s.mean:.{digits}g} ±{s.ci95:.2g}"


def fmt_g(x: float, digits: int = 3) -> str:
    return f"{x:.{digits}g}"
