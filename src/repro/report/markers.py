"""Marker-guarded regions: the machine-owned slices of a hand-written doc.

EXPERIMENTS.md mixes prose (hand-written, interprets the numbers) with
tables and fit lines (machine-rendered from the stores).  The rendered
slices live between HTML-comment markers::

    <!-- repro:begin gallery -->
    ...regenerated content, never edited by hand...
    <!-- repro:end gallery -->

so ``python -m repro report`` can rewrite exactly those regions and
``--check`` can prove they match the data.  Malformed marker structure is a
hard error, not a best-effort skip — a typo'd or nested marker would
otherwise silently freeze a region at stale content forever.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Tuple

__all__ = ["MarkerError", "begin_marker", "end_marker", "find_regions", "splice", "splice_all"]

#: ``<!-- repro:begin name -->`` / ``<!-- repro:end name -->``
_MARKER = re.compile(r"<!--\s*repro:(begin|end)\s+([A-Za-z0-9_\-]+)\s*-->")


class MarkerError(ValueError):
    """Malformed or mismatched region markers in a guarded document."""


def begin_marker(name: str) -> str:
    return f"<!-- repro:begin {name} -->"


def end_marker(name: str) -> str:
    return f"<!-- repro:end {name} -->"


def find_regions(text: str) -> Dict[str, Tuple[int, int]]:
    """Map each region name to the (start, end) offsets of its inner content.

    The inner content excludes the marker comments themselves.  Raises
    :class:`MarkerError` on nested regions, duplicate names, an ``end`` with
    no (or the wrong) open ``begin``, or a ``begin`` that is never closed.
    """
    regions: Dict[str, Tuple[int, int]] = {}
    open_name = None
    open_end = 0
    for match in _MARKER.finditer(text):
        kind, name = match.group(1), match.group(2)
        if kind == "begin":
            if open_name is not None:
                raise MarkerError(
                    f"nested marker: 'begin {name}' inside the open region {open_name!r}"
                )
            if name in regions:
                raise MarkerError(f"duplicate region {name!r}")
            open_name, open_end = name, match.end()
        else:
            if open_name is None:
                raise MarkerError(f"'end {name}' without a matching begin marker")
            if name != open_name:
                raise MarkerError(
                    f"'end {name}' closes the open region {open_name!r}"
                )
            regions[open_name] = (open_end, match.start())
            open_name = None
    if open_name is not None:
        raise MarkerError(f"region {open_name!r} has no end marker")
    return regions


def splice(text: str, name: str, content: str) -> str:
    """Replace one region's inner content (markers stay in place)."""
    return splice_all(text, {name: content}, strict=False)


def splice_all(text: str, sections: Mapping[str, str], *, strict: bool = True) -> str:
    """Replace every region's content with its rendered section.

    With ``strict`` (the default), the document's regions and the rendered
    section names must match exactly: a document region with no renderer is
    an *unknown marker* (it would freeze at stale content), a renderer with
    no document region is a *missing marker* (its output would be dropped).
    Both raise :class:`MarkerError`.
    """
    regions = find_regions(text)
    if strict:
        unknown = sorted(set(regions) - set(sections))
        if unknown:
            raise MarkerError(
                f"unknown region(s) {unknown} in document — no renderer produces them "
                f"(renderers: {sorted(sections)})"
            )
    missing = sorted(set(sections) - set(regions))
    if missing:
        raise MarkerError(
            f"missing marker(s) for section(s) {missing} — the document has "
            f"regions {sorted(regions)}"
        )
    # splice back-to-front so earlier offsets stay valid
    out = text
    for name in sorted(sections, key=lambda n: regions[n][0], reverse=True):
        start, end = regions[name]
        out = out[:start] + "\n" + sections[name].strip("\n") + "\n" + out[end:]
    return out
