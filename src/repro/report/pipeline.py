"""Build, write, and verify the generated record files.

:func:`build_outputs` is a pure function of the committed stores: it returns
the full generated content of every report-owned path (the spliced
EXPERIMENTS.md, CLAIMS.md, the SVG figures).  :func:`report` applies it —
write mode rewrites whatever drifted; ``check`` mode rewrites nothing and
returns non-zero if anything *would* change, which is the CI invariant
"the committed docs match the committed data".
"""

from __future__ import annotations

import os
from typing import Callable, Dict

from repro.report.ledger import evaluate_claims, render_claims
from repro.report.markers import splice_all
from repro.report.sections import render_figures, render_sections
from repro.report.util import RecordBundle, ReportError

__all__ = ["build_outputs", "report"]

EXPERIMENTS = "EXPERIMENTS.md"
CLAIMS = "CLAIMS.md"


def build_outputs(root: str = ".") -> Dict[str, str]:
    """Generated content for every report-owned path, repo-relative.

    EXPERIMENTS.md is read from ``root`` (its prose is hand-written; only
    the marker-guarded regions are regenerated), everything else is built
    from scratch.
    """
    bundle = RecordBundle(root)
    exp_path = os.path.join(bundle.root, EXPERIMENTS)
    if not os.path.exists(exp_path):
        raise ReportError(
            f"no {EXPERIMENTS} under {root!r} — run from the repository root "
            "(or pass --root)"
        )
    with open(exp_path) as fh:
        experiments = fh.read()
    outputs = {EXPERIMENTS: splice_all(experiments, render_sections(bundle))}
    outputs[CLAIMS] = render_claims(evaluate_claims(bundle))
    outputs.update(render_figures(bundle))
    return outputs


def report(root: str = ".", *, check: bool = False, log: Callable[[str], None] = print) -> int:
    """Regenerate (or, with ``check``, verify) the generated record files.

    Returns a process exit code: 0 when the committed files match the
    stores (check) or after writing (write mode); 1 when ``check`` found
    drift.  Unreadable stores raise
    :class:`~repro.report.util.ReportError`; malformed markers raise
    :class:`~repro.report.markers.MarkerError`.
    """
    outputs = build_outputs(root)
    root = os.path.abspath(root)
    stale = []
    for rel, content in sorted(outputs.items()):
        path = os.path.join(root, rel)
        try:
            with open(path) as fh:
                current = fh.read()
        except OSError:
            current = None
        if current != content:
            stale.append(rel)
    if check:
        if stale:
            log("report --check: generated record differs from the committed files:")
            for rel in stale:
                log(f"  stale: {rel}")
            log("run `python -m repro report` and commit the result")
            return 1
        log(f"report --check: {len(outputs)} generated file(s) match the stores")
        return 0
    for rel in stale:
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            fh.write(outputs[rel])
        log(f"wrote {rel}")
    if not stale:
        log("all generated files already match the stores")
    return 0
