"""Self-verifying experiment record: regenerate the published docs from data.

The committed record has three layers that must agree: the JSONL trial
stores under ``experiments/`` (the data), the tables and fit lines quoted in
EXPERIMENTS.md (the presentation), and the theorem-claims ledger CLAIMS.md
(the verdicts).  This package is the only path between them:

1. :mod:`~repro.report.markers` — marker-guarded regions
   (``<!-- repro:begin <name> -->`` ... ``<!-- repro:end <name> -->``) inside
   EXPERIMENTS.md that only the renderer writes; prose around them stays
   hand-written.
2. :mod:`~repro.report.sections` — renders each region's tables and fit
   lines straight from the stores, plus the dependency-free SVG scaling
   figures under ``experiments/figures/``.
3. :mod:`~repro.report.ledger` — the claims ledger: one row per
   :data:`repro.analysis.theory.PREDICTORS` entry, fitted against its
   campaign store with explicit tolerances and rendered as CLAIMS.md with a
   SUPPORTED / PARTIAL / REFUTED / UNTESTED verdict each.
4. :mod:`~repro.report.pipeline` — ties it together behind
   ``python -m repro report``; ``--check`` exits non-zero when any guarded
   region, CLAIMS.md, or figure differs from what the stores produce, which
   makes "the docs match the data" a CI invariant.

Everything is deterministic: same stores in, same bytes out (asserted by
``tests/report/test_report_golden.py``).  See DESIGN.md section 8.
"""

from repro.report.ledger import (
    PARTIAL,
    REFUTED,
    SUPPORTED,
    UNTESTED,
    ClaimResult,
    ClaimRow,
    Evidence,
    claims_ledger,
    evaluate_claims,
    render_claims,
)
from repro.report.markers import MarkerError, find_regions, splice, splice_all
from repro.report.pipeline import build_outputs, report
from repro.report.util import RecordBundle, ReportError

__all__ = [
    "PARTIAL",
    "REFUTED",
    "SUPPORTED",
    "UNTESTED",
    "ClaimResult",
    "ClaimRow",
    "Evidence",
    "MarkerError",
    "RecordBundle",
    "ReportError",
    "build_outputs",
    "claims_ledger",
    "evaluate_claims",
    "find_regions",
    "render_claims",
    "report",
    "splice",
    "splice_all",
]
