"""The theorem-claims ledger: every predictor, its evidence, its verdict.

The paper makes seven quantitative claims, encoded as shape predictors in
:mod:`repro.analysis.theory` (:data:`~repro.analysis.theory.PREDICTORS`).
This module is the registry that maps each predictor to the committed
campaign store and metric that tests it, fits the measurement with
:mod:`repro.analysis.fits`, and renders the generated CLAIMS.md.

Verdict semantics — shapes, not constants (DESIGN.md section 8):

* ``SUPPORTED`` — every evidence fit lands inside its strict tolerance.
* ``PARTIAL`` — evidence exists but only clears the loose tolerance, or the
  row declares that it tests only part of the claim (``partial_reason``).
* ``REFUTED`` — a fit misses even the loose tolerance; the record
  contradicts the declared expectation and the ledger says so out loud.
* ``UNTESTED`` — no committed campaign tests the claim.  Allowed, but the
  row must declare *why* (``untested_reason``), so coverage gaps are
  visible in CLAIMS.md instead of silent.

Tolerances are deliberately explicit per row: laptop-scale protocols
quantize to iteration boundaries (lengths grow as powers of 4), so a
log-log slope over a small grid carries lattice noise that an implicit
global tolerance would either mask or trip over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import fit_loglog_slope, max_relative_residual
from repro.analysis.theory import (
    PREDICTORS,
    adv_cost,
    adv_time,
    limited_adv_time,
    limited_time,
    multicast_core_time,
    multicast_cost,
    normalize_to,
)
from repro.exp.store import cells_where
from repro.report.util import ADV_ALPHA as _ADV_ALPHA
from repro.report.util import FIXED_T as _T
from repro.report.util import RecordBundle, ReportError

__all__ = [
    "SUPPORTED",
    "PARTIAL",
    "REFUTED",
    "UNTESTED",
    "Evidence",
    "EvidenceResult",
    "ClaimRow",
    "ClaimResult",
    "claims_ledger",
    "evaluate_evidence",
    "evaluate_claims",
    "render_claims",
]

SUPPORTED = "SUPPORTED"
PARTIAL = "PARTIAL"
REFUTED = "REFUTED"
UNTESTED = "UNTESTED"

#: Severity order used to combine evidence verdicts (worst wins).
_RANK = {SUPPORTED: 0, PARTIAL: 1, REFUTED: 2, UNTESTED: 3}


@dataclass(frozen=True)
class Evidence:
    """One fit of one store metric against one expectation.

    ``kind`` picks the acceptance rule:

    * ``"exponent"`` — the measured log-log slope must match the expected
      exponent to within ``tol`` (strict) / ``tol_loose`` (partial);
    * ``"envelope"`` — the measured slope must stay *at or below* the
      expected exponent plus the tolerance (upper-bound claims);
    * ``"shape"`` — the normalized predicted curve must track the measured
      one with worst-point relative residual below the tolerance.

    The expected exponent/curve comes from ``curve`` (a theory predictor
    partially applied to the non-x parameters, fitted over the same x grid)
    or, for expectations that are not a predictor (e.g. "flat in n"), from
    the explicit ``expect`` exponent.
    """

    label: str
    store: str
    metric: str
    x: str  #: CellStats attribute on the x axis: "n", "budget", "channels"
    kind: str  #: "exponent" | "envelope" | "shape"
    curve: Optional[Callable[[np.ndarray], np.ndarray]] = None
    expect: Optional[float] = None  #: explicit expected exponent (no curve)
    select: Tuple[Tuple[str, object], ...] = ()  #: CellStats equality filters
    tol: float = 0.15
    tol_loose: float = 0.5
    r2_min: Optional[float] = None  #: exponent fits only; gate on fit quality
    note: str = ""


@dataclass(frozen=True)
class EvidenceResult:
    evidence: Evidence
    verdict: str
    measured: float  #: fitted exponent (exponent/envelope) or worst residual (shape)
    expected: float  #: expected exponent or the residual tolerance it was held to
    detail: str  #: one rendered line for CLAIMS.md


@dataclass(frozen=True)
class ClaimRow:
    """One ledger row: a predictor, the paper claim, and its evidence."""

    predictor: str  #: key into analysis.theory.PREDICTORS
    statement: str  #: one-line paper claim
    evidence: Tuple[Evidence, ...] = ()
    partial_reason: str = ""  #: non-empty caps the verdict at PARTIAL
    untested_reason: str = ""  #: required iff evidence is empty

    @property
    def claim(self) -> str:
        return PREDICTORS[self.predictor]


@dataclass(frozen=True)
class ClaimResult:
    row: ClaimRow
    verdict: str
    evidence_results: Tuple[EvidenceResult, ...]


def _series(bundle: RecordBundle, ev: Evidence) -> Tuple[np.ndarray, np.ndarray]:
    cells = cells_where(bundle.cells(ev.store), **dict(ev.select))
    cells = sorted(cells, key=lambda c: getattr(c, ev.x))
    if len(cells) < 2:
        raise ReportError(
            f"evidence {ev.label!r}: store {ev.store!r} has {len(cells)} cell(s) "
            f"matching {dict(ev.select)} — need at least 2"
        )
    xs = np.array([getattr(c, ev.x) for c in cells], dtype=np.float64)
    ys = np.array([c.summary(ev.metric).mean for c in cells], dtype=np.float64)
    if not np.all(np.isfinite(ys)) or np.any(ys <= 0):
        raise ReportError(
            f"evidence {ev.label!r}: metric {ev.metric!r} has non-positive or "
            f"missing cell means ({ys.tolist()})"
        )
    return xs, ys


def _expected_exponent(ev: Evidence, xs: np.ndarray) -> float:
    if ev.curve is not None:
        return fit_loglog_slope(xs, ev.curve(xs)).exponent
    if ev.expect is None:
        raise ReportError(f"evidence {ev.label!r} declares neither curve nor expect")
    return float(ev.expect)


def evaluate_evidence(bundle: RecordBundle, ev: Evidence) -> EvidenceResult:
    """Fit one evidence item and grade it against its tolerances."""
    xs, ys = _series(bundle, ev)
    suffix = f" — {ev.note}" if ev.note else ""

    if ev.kind == "shape":
        if ev.curve is None:
            raise ReportError(f"shape evidence {ev.label!r} needs a curve")
        expected = normalize_to(ev.curve(xs), ys)
        residual = max_relative_residual(expected, ys)
        if residual <= ev.tol:
            verdict = SUPPORTED
        elif residual <= ev.tol_loose:
            verdict = PARTIAL
        else:
            verdict = REFUTED
        detail = (
            f"{ev.label}: worst-point residual {residual:.2f} vs the normalized "
            f"predicted curve (≤ {ev.tol:.2f} strict, ≤ {ev.tol_loose:.2f} loose)"
            f"{suffix}"
        )
        return EvidenceResult(ev, verdict, residual, ev.tol, detail)

    fit = fit_loglog_slope(xs, ys)
    expected = _expected_exponent(ev, xs)
    if ev.kind == "exponent":
        delta = abs(fit.exponent - expected)
        if delta <= ev.tol and (ev.r2_min is None or fit.r2 >= ev.r2_min):
            verdict = SUPPORTED
        elif delta <= ev.tol_loose:
            verdict = PARTIAL
        else:
            verdict = REFUTED
        detail = (
            f"{ev.label}: `{ev.metric} ~ {ev.x}^{fit.exponent:.2f}` "
            f"(r² = {fit.r2:.3f}) vs predicted exponent {expected:.2f} "
            f"(|Δ| = {delta:.2f}, ≤ {ev.tol:.2f} strict, ≤ {ev.tol_loose:.2f} loose)"
            f"{suffix}"
        )
    elif ev.kind == "envelope":
        excess = fit.exponent - expected
        if excess <= ev.tol:
            verdict = SUPPORTED
        elif excess <= ev.tol_loose:
            verdict = PARTIAL
        else:
            verdict = REFUTED
        detail = (
            f"{ev.label}: `{ev.metric} ~ {ev.x}^{fit.exponent:.2f}` stays inside "
            f"the predicted `{ev.x}^{expected:.2f}` envelope "
            f"(excess {excess:+.2f}, ≤ {ev.tol:.2f} strict, ≤ {ev.tol_loose:.2f} loose)"
            f"{suffix}"
        )
    else:
        raise ReportError(f"evidence {ev.label!r}: unknown kind {ev.kind!r}")
    return EvidenceResult(ev, verdict, fit.exponent, expected, detail)


# -- the ledger --------------------------------------------------------------------


def claims_ledger() -> Tuple[ClaimRow, ...]:
    """One row per :data:`repro.analysis.theory.PREDICTORS` entry."""
    return (
        ClaimRow(
            predictor="multicast_core_time",
            statement=(
                "MultiCastCore completes, and every node spends, "
                "O(T/n + max{lg T, lg n}) against any oblivious jammer."
            ),
            evidence=(
                Evidence(
                    label="completion time vs Eve's budget (n=64)",
                    store="core_scaling",
                    metric="slots",
                    x="budget",
                    kind="envelope",
                    curve=lambda T: multicast_core_time(T, 64),
                    select=(("n", 64), ("protocol", "core")),
                    tol=0.05,
                    tol_loose=0.25,
                ),
                Evidence(
                    label="busiest-node cost vs Eve's budget (n=64)",
                    store="core_scaling",
                    metric="max_cost",
                    x="budget",
                    kind="envelope",
                    curve=lambda T: multicast_core_time(T, 64),
                    select=(("n", 64), ("protocol", "core")),
                    tol=0.05,
                    tol_loose=0.25,
                ),
                Evidence(
                    label="small-n grid: cost flat from n=16 to n=64 (T=100k)",
                    store="core_scaling",
                    metric="max_cost",
                    x="n",
                    kind="exponent",
                    expect=0.0,
                    select=(("budget", _T),),
                    tol=0.1,
                    tol_loose=0.3,
                    note=(
                        "at laptop scale both the T/n and lg terms are "
                        "iteration-quantized, so cost must not *grow* with n"
                    ),
                ),
            ),
        ),
        ClaimRow(
            predictor="multicast_time",
            statement="MultiCast completes in O(T/n + lg² n) slots.",
            evidence=(
                Evidence(
                    label="dissemination time flat in n (budget dilution, T=100k)",
                    store="scaling_n",
                    metric="dissemination_slot",
                    x="n",
                    kind="exponent",
                    expect=0.0,
                    tol=0.15,
                    tol_loose=0.5,
                    note=(
                        "doubling n doubles C = n/2, so Eve's fixed budget "
                        "covers the same spectrum fraction half as long"
                    ),
                ),
            ),
            partial_reason=(
                "only the dilution effect behind the T/n term is measurable here: "
                "total completion time is dominated by the iteration-quantized "
                "halt rule (the additive lg² n term) until T ≫ n·lg² n, which is "
                "hours per cell on one core — see EXPERIMENTS.md section 4."
            ),
        ),
        ClaimRow(
            predictor="multicast_cost",
            statement=(
                "MultiCast's busiest node spends Õ(√(T/n)) — Eve must outspend "
                "it roughly quadratically."
            ),
            evidence=(
                Evidence(
                    label="busiest-node cost vs Eve's budget (n=64)",
                    store="budget",
                    metric="max_cost",
                    x="budget",
                    kind="envelope",
                    curve=lambda T: multicast_cost(T, 64),
                    select=(("protocol", "multicast"),),
                    tol=0.05,
                    tol_loose=0.25,
                    note=(
                        "the measured curve is a staircase (cost jumps only when "
                        "extra budget forces one more iteration), so the claim is "
                        "an envelope, not a clean power law"
                    ),
                ),
            ),
        ),
        ClaimRow(
            predictor="adv_time",
            statement=(
                "MultiCastAdv (unknown n, unknown T) completes in "
                "Õ(T/n^(1−2α) + n^(2α)) slots."
            ),
            evidence=(
                Evidence(
                    label="unjammed completion time vs n (additive term)",
                    store="adv_unjammed",
                    metric="slots",
                    x="n",
                    kind="shape",
                    curve=lambda n: adv_time(0, n, _ADV_ALPHA),
                    tol=0.6,
                    tol_loose=2.0,
                    note=(
                        "epoch lengths grow as powers of 4, so a 3-point grid "
                        "carries up to a factor-4 lattice residual"
                    ),
                ),
            ),
            partial_reason=(
                "tests only the additive n^(2α) term (T = 0): jammed MultiCastAdv "
                "trials take minutes each at laptop scale, so the budget term is "
                "covered by benchmarks/bench_multicast_adv.py rather than a "
                "committed campaign."
            ),
        ),
        ClaimRow(
            predictor="adv_cost",
            statement=(
                "MultiCastAdv's busiest node spends Õ(√(T/n^(1−2α)) + n^(2α))."
            ),
            evidence=(
                Evidence(
                    label="unjammed busiest-node cost vs n (additive term)",
                    store="adv_unjammed",
                    metric="max_cost",
                    x="n",
                    kind="shape",
                    curve=lambda n: adv_cost(0, n, _ADV_ALPHA),
                    tol=0.6,
                    tol_loose=2.0,
                    note=(
                        "small-n cost is dominated by the helper-wait floor of "
                        "the laptop profile, flattening the measured curve "
                        "against the n^(2α)·lg³n prediction"
                    ),
                ),
            ),
            partial_reason=(
                "tests only the additive n^(2α) term (T = 0), like the time bound "
                "above; the √T budget term needs jammed campaigns that are "
                "minutes per trial at laptop scale."
            ),
        ),
        ClaimRow(
            predictor="limited_time",
            statement=(
                "MultiCast(C) completes in O(T/C + (n/C)·lg² n) — halving the "
                "spectrum doubles the time, energy unchanged."
            ),
            evidence=(
                Evidence(
                    label="completion time vs channel count (n=64)",
                    store="channels",
                    metric="slots",
                    x="channels",
                    kind="exponent",
                    curve=lambda C: limited_time(_T, 64, C),
                    tol=0.1,
                    tol_loose=0.3,
                    r2_min=0.99,
                ),
                Evidence(
                    label="busiest-node cost flat in C",
                    store="channels",
                    metric="max_cost",
                    x="channels",
                    kind="exponent",
                    expect=0.0,
                    tol=0.1,
                    tol_loose=0.3,
                ),
            ),
        ),
        ClaimRow(
            predictor="limited_adv_time",
            statement=(
                "MultiCastAdvC completes in Õ(T/C^(1−2α) + n^(2+2α)/C^(2−2α)) "
                "with C channels and unknown n, T."
            ),
            evidence=(
                Evidence(
                    label="jammed completion time vs channel cap (n=16)",
                    store="limited_adv",
                    metric="slots",
                    x="channels",
                    kind="exponent",
                    curve=lambda C: limited_adv_time(0, 16, C, _ADV_ALPHA),
                    select=(("n", 16),),
                    tol=0.35,
                    tol_loose=1.0,
                    note=(
                        "termination epochs are lattice-quantized (doubling C "
                        "moves the halt phase by ~(1/α − 1) epochs), so a "
                        "3-point C grid carries the section-10 residual budget"
                    ),
                ),
                Evidence(
                    label="jammed completion time vs channel cap (n=32)",
                    store="limited_adv",
                    metric="slots",
                    x="channels",
                    kind="exponent",
                    curve=lambda C: limited_adv_time(0, 32, C, _ADV_ALPHA),
                    select=(("n", 32),),
                    tol=0.35,
                    tol_loose=1.0,
                    note=(
                        "the deepest-scarcity series (C ≤ n/4 throughout), "
                        "where the asymptotic C exponent is least polluted "
                        "by the lattice quantization that flattens the "
                        "n = 16 fit"
                    ),
                ),
                Evidence(
                    label="jammed completion time vs n (C=2)",
                    store="limited_adv",
                    metric="slots",
                    x="n",
                    kind="exponent",
                    curve=lambda n: limited_adv_time(0, n, 2, _ADV_ALPHA),
                    select=(("channels", 2),),
                    tol=0.5,
                    tol_loose=1.5,
                    note=(
                        "C = 2 is the deepest-scarcity column and the one "
                        "where C ≪ n holds at every grid point (n = 8, 16, "
                        "32)"
                    ),
                ),
            ),
            partial_reason=(
                "the committed blackout grid (T = 1e5) is dominated by the "
                "additive n^(2+2α)/C^(2−2α) term — Eve's whole budget jams "
                "under 1% of a run — so these fits grade that term's C and n "
                "dependence in its home regime (the n = 16 and n = 32 "
                "series, C ≤ n/2 throughout; the n = 8 cells run C up to n "
                "itself and are reported unfitted in EXPERIMENTS.md section "
                "11); the T/C^(1−2α) budget term stays bench-only "
                "(benchmarks/bench_limited_adv.py), as for Thms 6.10b/c."
            ),
        ),
    )


def evaluate_claims(bundle: RecordBundle) -> List[ClaimResult]:
    """Evaluate the full ledger against the committed stores.

    The ledger must cover exactly the predictor registry — a new predictor
    in :mod:`repro.analysis.theory` without a declared ledger row (UNTESTED
    counts) is an error here, not a silent coverage gap.
    """
    rows = claims_ledger()
    declared = [row.predictor for row in rows]
    if declared != list(PREDICTORS):
        raise ReportError(
            f"ledger rows {declared} do not match theory.PREDICTORS "
            f"{list(PREDICTORS)} — every predictor needs exactly one row, in order"
        )
    results = []
    for row in rows:
        if not row.evidence:
            if not row.untested_reason:
                raise ReportError(
                    f"ledger row {row.predictor!r} has no evidence and no "
                    "untested_reason — untested claims must be declared"
                )
            results.append(ClaimResult(row, UNTESTED, ()))
            continue
        ev_results = tuple(evaluate_evidence(bundle, ev) for ev in row.evidence)
        verdict = max((r.verdict for r in ev_results), key=_RANK.__getitem__)
        if row.partial_reason and _RANK[verdict] < _RANK[PARTIAL]:
            verdict = PARTIAL
        results.append(ClaimResult(row, verdict, ev_results))
    return results


def render_claims(results: Sequence[ClaimResult]) -> str:
    """Render CLAIMS.md from evaluated ledger rows."""
    counts: Dict[str, int] = {}
    for r in results:
        counts[r.verdict] = counts.get(r.verdict, 0) + 1
    summary = ", ".join(
        f"{counts[v]} {v}" for v in (SUPPORTED, PARTIAL, REFUTED, UNTESTED) if v in counts
    )
    lines = [
        "# CLAIMS.md — theorem-claims ledger",
        "",
        "Auto-generated by `python -m repro report` from the committed campaign",
        "stores in `experiments/` — do not edit by hand. CI runs",
        "`python -m repro report --check`, so this file provably matches the",
        "data. Verdicts compare *shapes* (fitted exponents and normalized",
        "curves within explicit tolerances), never the paper's hidden",
        "constants — see DESIGN.md section 8.",
        "",
        f"**Coverage:** {summary} of {len(results)} claims.",
        "",
        "| predictor | claim | verdict | evidence |",
        "|---|---|---|---|",
    ]
    for r in results:
        basis = (
            f"{len(r.evidence_results)} fit(s)"
            if r.evidence_results
            else "declared untested"
        )
        lines.append(
            f"| `{r.row.predictor}` | {r.row.claim} | **{r.verdict}** | {basis} |"
        )
    for r in results:
        lines += [
            "",
            f"## {r.row.claim} — `{r.row.predictor}`",
            "",
            f"> {r.row.statement}",
            "",
            f"**Verdict: {r.verdict}.**",
            "",
        ]
        for ev in r.evidence_results:
            lines.append(f"- [{ev.verdict}] {ev.detail}.")
            lines.append(
                f"  (store: `experiments/{ev.evidence.store}.jsonl`, "
                f"metric: `{ev.evidence.metric}`)"
            )
        if r.row.partial_reason:
            lines.append(f"- *Partial coverage:* {r.row.partial_reason}")
        if r.row.untested_reason:
            lines.append(f"- *Why untested:* {r.row.untested_reason}")
    return "\n".join(lines) + "\n"
