"""Renderers for the marker-guarded regions of EXPERIMENTS.md + the figures.

Each function takes the :class:`~repro.report.util.RecordBundle` and returns
the inner markdown of one region — tables, fit lines, figure links — exactly
as the committed stores dictate.  The surrounding prose (paper claims,
verdict narratives) stays hand-written in EXPERIMENTS.md; only what is a
pure function of the data lives here.

:data:`SECTIONS` is the region registry (names must match the markers in
EXPERIMENTS.md one-to-one; :func:`repro.report.markers.splice_all` enforces
the bijection), :data:`FIGURES` maps committed figure paths to builders.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

import numpy as np

from repro.analysis import fit_loglog_slope, render_markdown_table, render_table
from repro.analysis.theory import (
    adv_cost,
    adv_time,
    limited_adv_time,
    limited_time,
    multicast_core_time,
    multicast_cost,
    multicast_time,
    normalize_to,
)
from repro.exp.store import CellStats, cells_where
from repro.report.figures import Series, svg_loglog
from repro.report.util import (
    ADV_ALPHA as _ADV_ALPHA,
    FIXED_T as _T,
    RecordBundle,
    ReportError,
    fmt_pm,
)

__all__ = ["SECTIONS", "FIGURES", "render_sections", "render_figures"]


def _fence(table: str) -> str:
    return f"```\n{table}\n```"


def _figure(name: str, alt: str) -> str:
    return f"![{alt}](experiments/figures/{name}.svg)"


def _ratio(cell: CellStats) -> str:
    r = cell.competitiveness
    return "inf" if r == float("inf") else f"{r:.4f}"


# -- section 2: the jammer gallery -------------------------------------------------


def sec_gallery(bundle: RecordBundle) -> str:
    rows = [
        [
            c.protocol,
            c.jammer,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            fmt_pm(c.summary("max_cost")),
            f"{c.summary('adversary_spend').mean:.3g}",
            _ratio(c),
        ]
        for c in bundle.cells("gallery")
    ]
    return _fence(
        render_table(
            ["protocol", "jammer", "ok", "slots", "max cost", "Eve spend", "cost/T"],
            rows,
        )
    )


# -- section 3: channel scarcity ---------------------------------------------------


def _channels_cells(bundle: RecordBundle) -> List[CellStats]:
    return sorted(bundle.cells("channels"), key=lambda c: c.channels)


def sec_channels(bundle: RecordBundle) -> str:
    cells = _channels_cells(bundle)
    rows = [
        [
            c.channels,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            fmt_pm(c.summary("max_cost")),
        ]
        for c in cells
    ]
    fit = fit_loglog_slope(
        [c.channels for c in cells], [c.summary("slots").mean for c in cells]
    )
    return "\n\n".join(
        [
            _fence(render_table(["C", "ok", "slots", "max cost"], rows)),
            f"Fit: `slots ~ C^{fit.exponent:.2f}` (r² = {fit.r2:.3f}); "
            "Cor. 7.1 predicts exponent −1.",
            _figure("channels", "completion time vs channel count, log-log"),
        ]
    )


# -- section 4: network-size scaling ----------------------------------------------


def _scaling_cells(bundle: RecordBundle) -> List[CellStats]:
    return sorted(bundle.cells("scaling_n"), key=lambda c: c.n)


def sec_scaling_n(bundle: RecordBundle) -> str:
    cells = _scaling_cells(bundle)
    ns = np.array([c.n for c in cells], dtype=float)
    measured = np.array([c.summary("slots").mean for c in cells])
    predicted = normalize_to(multicast_time(_T, ns.astype(int)), measured)
    rows = [
        [
            c.n,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("dissemination_slot")),
            fmt_pm(c.summary("slots")),
            f"{p:.3g}",
            fmt_pm(c.summary("max_cost")),
        ]
        for c, p in zip(cells, predicted)
    ]
    return "\n\n".join(
        [
            _fence(
                render_table(
                    ["n", "ok", "all informed by", "completed at", "Thm 5.4a shape", "max cost"],
                    rows,
                )
            ),
            _figure("scaling_n", "dissemination and completion time vs n, log-log"),
        ]
    )


# -- section 5: budget scaling -----------------------------------------------------


def _budget_series(bundle: RecordBundle, protocol: str) -> List[CellStats]:
    series = cells_where(bundle.cells("budget"), protocol=protocol)
    return sorted(series, key=lambda c: c.budget)


def sec_budget(bundle: RecordBundle) -> str:
    rows, lines = [], []
    for protocol in ("core", "multicast"):
        series = _budget_series(bundle, protocol)
        for c in series:
            rows.append(
                [
                    protocol,
                    f"{c.budget:,}",
                    f"{c.success_rate:.0%}",
                    fmt_pm(c.summary("slots")),
                    fmt_pm(c.summary("max_cost")),
                ]
            )
        fit = fit_loglog_slope(
            [c.budget for c in series], [c.summary("max_cost").mean for c in series]
        )
        lines.append(
            f"`max_cost ~ T^{fit.exponent:.2f}` for {protocol} (r² = {fit.r2:.3f})"
        )
    return "\n\n".join(
        [
            _fence(render_table(["protocol", "T", "ok", "slots", "max cost"], rows)),
            "Fits: " + "; ".join(lines) + ".",
            _figure("budget", "busiest-node cost vs adversary budget, log-log"),
        ]
    )


# -- section 7: engine throughput (from the committed benchmark baseline) ----------


def sec_engine(bundle: RecordBundle) -> str:
    bench = bundle.bench("engine")
    try:
        results = bench["results"]["test_run_trials_batched_vs_scalar"]["speedups"]
        rows = [
            [
                jammer,
                f"{results[jammer]['baseline_s']:.2f}",
                f"{results[jammer]['fast_s']:.2f}",
                f"{results[jammer]['trials_per_s_scalar']:.2f}",
                f"{results[jammer]['trials_per_s_batched']:.2f}",
                f"{results[jammer]['speedup']:.2f}x",
            ]
            for jammer in ("none", "blanket")
        ]
    except KeyError as exc:
        raise ReportError(f"BENCH_engine.json is missing the expected key {exc}") from None
    return render_markdown_table(
        ["jammer", "scalar (s)", "batched (s)", "trials/s scalar", "trials/s batched", "speedup"],
        rows,
    )


# -- section 8: oblivious vs adaptive ---------------------------------------------

#: Ladder order + the sensing-latency column of the arena matchup table.
_ARENA_LADDER = (
    ("none", "—"),
    ("random", "(oblivious)"),
    ("trailing", "1"),
    ("reactive:2", "2"),
    ("sniper", "0 (in-slot)"),
)


def sec_arena(bundle: RecordBundle) -> str:
    cells = {c.jammer: c for c in bundle.cells("arena")}
    rows = []
    for jammer, latency in _ARENA_LADDER:
        if jammer not in cells:
            raise ReportError(f"arena store has no {jammer!r} cell")
        c = cells[jammer]
        rows.append(
            [
                f"`{jammer}`",
                latency,
                f"{c.success_rate:.0%}",
                fmt_pm(c.summary("slots")),
                f"{c.summary('adversary_spend').mean:.3g}",
                _ratio(c),
            ]
        )
    table = render_markdown_table(
        ["jammer", "sensing latency", "ok", "slots", "Eve spend", "cost/T"], rows
    )
    bench = bundle.bench("arena")
    try:
        runtime = bench["results"]["test_arena_vs_scalar_runtime"]["speedups"]
        speedups = ", ".join(
            f"{label} {runtime[key]['speedup']:.1f}x"
            for label, key in (("unjammed", "none"), ("sniper", "sniper"), ("trailing", "trailing"))
        )
    except KeyError as exc:
        raise ReportError(f"BENCH_arena.json is missing the expected key {exc}") from None
    return "\n\n".join(
        [
            table,
            "Arena runtime vs. the scalar reference loop, bit-identical results "
            f"(committed `benchmarks/BENCH_arena.json`): {speedups}.",
        ]
    )


#: Ladder order for the windowed-arena campaign: the latency-0 negative
#: control plus every window-steppable rung.
_ARENA_WINDOWED_LADDER = (
    ("sniper", "0 (in-slot)", "slot (fallback)"),
    ("trailing", "1", "windowed"),
    ("reactive:1", "1", "windowed"),
    ("reactive:2", "2", "windowed"),
    ("reactive:4", "4", "windowed"),
)


def sec_arena_windowed(bundle: RecordBundle) -> str:
    cells = {c.jammer: c for c in bundle.cells("arena_windowed")}
    rows = []
    for jammer, latency, backend in _ARENA_WINDOWED_LADDER:
        if jammer not in cells:
            raise ReportError(f"arena_windowed store has no {jammer!r} cell")
        c = cells[jammer]
        rows.append(
            [
                f"`{jammer}`",
                latency,
                backend,
                f"{c.success_rate:.0%}",
                fmt_pm(c.summary("slots")),
                f"{c.summary('adversary_spend').mean:.3g}",
                _ratio(c),
            ]
        )
    table = render_markdown_table(
        ["jammer", "sensing latency", "backend", "ok", "slots", "Eve spend", "cost/T"],
        rows,
    )
    bench = bundle.bench("arena_windowed")
    try:
        ladders = []
        for label, key in (
            ("`multicast_c` (C=4)", "test_window_ladder_multicast_c"),
            ("`multicast`", "test_window_ladder_multicast"),
        ):
            rungs = bench["results"][key]["speedups"]
            speedups = ", ".join(
                f"L={latency} {rungs[f'latency_{latency}']['speedup']:.1f}x"
                for latency in (1, 2, 4, 8)
            )
            ladders.append(f"{label}: {speedups}")
    except KeyError as exc:
        raise ReportError(
            f"BENCH_arena_windowed.json is missing the expected key {exc}"
        ) from None
    return "\n\n".join(
        [
            table,
            "Windowed vs. slot-stepped arena, bit-identical results (committed "
            "`benchmarks/BENCH_arena_windowed.json`): " + "; ".join(ladders) + ".",
        ]
    )


# -- section 9: MultiCastCore across T and n (Theorem 4.4) ------------------------


def _core_series(bundle: RecordBundle, n: int) -> List[CellStats]:
    series = cells_where(bundle.cells("core_scaling"), n=n)
    return sorted(series, key=lambda c: c.budget)


def sec_core_scaling(bundle: RecordBundle) -> str:
    cells = sorted(bundle.cells("core_scaling"), key=lambda c: (c.n, c.budget))
    rows = [
        [
            c.n,
            f"{c.budget:,}",
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            fmt_pm(c.summary("max_cost")),
        ]
        for c in cells
    ]
    lines = []
    for n in sorted({c.n for c in cells}):
        series = _core_series(bundle, n)
        budgets = [c.budget for c in series]
        tfit = fit_loglog_slope(budgets, [c.summary("slots").mean for c in series])
        cfit = fit_loglog_slope(budgets, [c.summary("max_cost").mean for c in series])
        lines.append(
            f"`slots ~ T^{tfit.exponent:.2f}`, `max_cost ~ T^{cfit.exponent:.2f}` "
            f"at n = {n}"
        )
    return "\n\n".join(
        [
            _fence(render_table(["n", "T", "ok", "slots", "max cost"], rows)),
            "Fits: " + "; ".join(lines) + " — Thm 4.4's envelope allows up to `T^1`.",
            _figure("core_scaling", "MultiCastCore time and cost vs adversary budget, log-log"),
        ]
    )


# -- section 10: the unknown-n additive term (Theorems 6.10b/c) -------------------


def _adv_cells(bundle: RecordBundle) -> List[CellStats]:
    return sorted(bundle.cells("adv_unjammed"), key=lambda c: c.n)


def sec_adv_unjammed(bundle: RecordBundle) -> str:
    cells = _adv_cells(bundle)
    ns = np.array([c.n for c in cells], dtype=float)
    slots = np.array([c.summary("slots").mean for c in cells])
    costs = np.array([c.summary("max_cost").mean for c in cells])
    pred_t = normalize_to(adv_time(0, ns, _ADV_ALPHA), slots)
    pred_c = normalize_to(adv_cost(0, ns, _ADV_ALPHA), costs)
    rows = [
        [
            c.n,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            f"{pt:.3g}",
            fmt_pm(c.summary("max_cost")),
            f"{pc:.3g}",
        ]
        for c, pt, pc in zip(cells, pred_t, pred_c)
    ]
    return "\n\n".join(
        [
            _fence(
                render_table(
                    ["n", "ok", "slots", "6.10b shape", "max cost", "6.10c shape"],
                    rows,
                )
            ),
            _figure("adv_unjammed", "MultiCastAdv unjammed time and cost vs n, log-log"),
        ]
    )


# -- section 11: jammed MultiCastAdvC across C and n (Theorem 7.2) ----------------


def _limited_adv_series(bundle: RecordBundle, n: int) -> List[CellStats]:
    series = cells_where(bundle.cells("limited_adv"), n=n)
    return sorted(series, key=lambda c: c.channels)


def _limited_adv_ns(bundle: RecordBundle) -> List[int]:
    return sorted({c.n for c in bundle.cells("limited_adv")})


def sec_limited_adv(bundle: RecordBundle) -> str:
    cells = sorted(bundle.cells("limited_adv"), key=lambda c: (c.n, c.channels))
    rows = [
        [
            c.n,
            c.channels,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            fmt_pm(c.summary("max_cost")),
            f"{c.summary('adversary_spend').mean:.3g}",
        ]
        for c in cells
    ]
    lines = []
    for n in _limited_adv_ns(bundle):
        series = _limited_adv_series(bundle, n)
        fit = fit_loglog_slope(
            [c.channels for c in series], [c.summary("slots").mean for c in series]
        )
        lines.append(f"`slots ~ C^{fit.exponent:.2f}` at n = {n} (r² = {fit.r2:.3f})")
    bench = bundle.bench("adv_batch")
    try:
        figures = bench["results"]["test_adv_batched_vs_scalar"]["speedups"]
        speedups = ", ".join(
            f"{name} {figures[name]['speedup']:.1f}x" for name in ("adv", "adv_c(C=4)")
        )
    except KeyError as exc:
        raise ReportError(
            f"BENCH_adv_batch.json is missing the expected key {exc}"
        ) from None
    return "\n\n".join(
        [
            _fence(
                render_table(["n", "C", "ok", "slots", "max cost", "Eve spend"], rows)
            ),
            "Fits: "
            + "; ".join(lines)
            + f" — Thm 7.2's additive term predicts `C^{-(2 - 2 * _ADV_ALPHA):.2f}`.",
            "Batched kernel vs. the scalar loop, bit-identical results "
            f"(committed `benchmarks/BENCH_adv_batch.json`): {speedups} — "
            "the speedup that makes this campaign committable at all.",
            _figure("limited_adv", "jammed MultiCastAdvC completion time vs channel cap, log-log"),
        ]
    )


# -- section 12: adaptive stopping (precision-targeted seed waves) ----------------

#: The stopping rule as embedded in a StoppingRecord key by
#: :meth:`repro.exp.adaptive.StoppingRule.suffix`.
_STOP_RULE = re.compile(r"stop\[(\w+)<=([^/\]]+)/w(\d+)/m(\d+)\]$")


def sec_adaptive(bundle: RecordBundle) -> str:
    stops = sorted(
        bundle.stopping("adaptive"), key=lambda s: (s.protocol, s.jammer, s.n)
    )
    if not stops:
        raise ReportError("adaptive store has no stopping records")
    match = _STOP_RULE.search(stops[0].key)
    if match is None:
        raise ReportError(f"unparsable stopping key {stops[0].key!r}")
    metric, target, wave, cap = (
        match.group(1),
        float(match.group(2)),
        int(match.group(3)),
        int(match.group(4)),
    )
    cells = {(c.protocol, c.jammer, c.n): c for c in bundle.cells("adaptive")}
    rows = []
    for s in stops:
        cell = cells.get((s.protocol, s.jammer, s.n))
        if cell is None or cell.trials != s.trials:
            raise ReportError(
                f"adaptive trial rows disagree with the stopping decision {s.key!r}"
            )
        rows.append(
            [
                s.protocol,
                s.jammer,
                s.trials,
                fmt_pm(cell.summary(metric)),
                f"{s.achieved:.3g}",
                s.reason,
            ]
        )
    spent = sum(s.trials for s in stops)
    fixed = cap * len(stops)
    return "\n\n".join(
        [
            _fence(
                render_table(
                    ["protocol", "jammer", "trials", metric, "achieved", "stopped on"],
                    rows,
                )
            ),
            f"{spent} trials where the fixed-cap grid runs {fixed} "
            f"({1 - spent / fixed:.0%} saved): per cell, waves of {wave} seeds "
            f"until the relative 95% CI half-width of `{metric}` reaches "
            f"{target:g} or the cap of {cap} does.",
        ]
    )


#: Region name -> renderer; must match the markers in EXPERIMENTS.md exactly.
SECTIONS: Dict[str, Callable[[RecordBundle], str]] = {
    "gallery": sec_gallery,
    "channels": sec_channels,
    "scaling_n": sec_scaling_n,
    "budget": sec_budget,
    "engine": sec_engine,
    "arena": sec_arena,
    "arena_windowed": sec_arena_windowed,
    "core_scaling": sec_core_scaling,
    "adv_unjammed": sec_adv_unjammed,
    "limited_adv": sec_limited_adv,
    "adaptive": sec_adaptive,
}


def render_sections(bundle: RecordBundle) -> Dict[str, str]:
    """All region contents, keyed by region name."""
    return {name: fn(bundle) for name, fn in SECTIONS.items()}


# -- figures ----------------------------------------------------------------------


def fig_channels(bundle: RecordBundle) -> str:
    cells = _channels_cells(bundle)
    C = [c.channels for c in cells]
    slots = [c.summary("slots").mean for c in cells]
    shape = normalize_to(limited_time(_T, 64, np.array(C, dtype=float)), np.array(slots))
    return svg_loglog(
        [
            Series("measured completion", C, slots),
            Series("Cor 7.1 shape (normalized)", C, list(shape), dashed=True, markers=False),
        ],
        title="MultiCast(C) vs blackout: completion time vs channels (n=64, T=1e5)",
        xlabel="channels C",
        ylabel="slots to completion",
    )


def fig_scaling_n(bundle: RecordBundle) -> str:
    cells = _scaling_cells(bundle)
    ns = [c.n for c in cells]
    completed = [c.summary("slots").mean for c in cells]
    informed = [c.summary("dissemination_slot").mean for c in cells]
    shape = normalize_to(
        multicast_time(_T, np.array(ns)), np.array(completed)
    )
    return svg_loglog(
        [
            Series("completed at", ns, completed),
            Series("all informed by", ns, informed),
            Series("Thm 5.4a shape (normalized)", ns, list(shape), dashed=True, markers=False),
        ],
        title="MultiCast vs blanket: time vs network size (T=1e5, a=0.1)",
        xlabel="nodes n",
        ylabel="slots",
    )


def fig_budget(bundle: RecordBundle) -> str:
    series = []
    for protocol, predictor, label in (
        ("multicast", multicast_cost, "Thm 5.4b shape (normalized)"),
        ("core", multicast_core_time, "Thm 4.4 shape (normalized)"),
    ):
        cells = _budget_series(bundle, protocol)
        T = [c.budget for c in cells]
        cost = [c.summary("max_cost").mean for c in cells]
        shape = normalize_to(predictor(np.array(T, dtype=float), 64), np.array(cost))
        series.append(Series(f"{protocol} max cost", T, cost))
        series.append(Series(label, T, list(shape), dashed=True, markers=False))
    return svg_loglog(
        series,
        title="Busiest-node cost vs Eve's budget (n=64, blanket)",
        xlabel="adversary budget T",
        ylabel="max node cost",
    )


def fig_core_scaling(bundle: RecordBundle) -> str:
    series = []
    for n in (16, 64):
        cells = _core_series(bundle, n)
        T = [c.budget for c in cells]
        series.append(Series(f"slots, n={n}", T, [c.summary("slots").mean for c in cells]))
    cells = _core_series(bundle, 64)
    T = [c.budget for c in cells]
    cost = [c.summary("max_cost").mean for c in cells]
    shape = normalize_to(multicast_core_time(np.array(T, dtype=float), 64), np.array(cost))
    series.append(Series("max cost, n=64", T, cost))
    series.append(Series("Thm 4.4 shape (normalized)", T, list(shape), dashed=True, markers=False))
    return svg_loglog(
        series,
        title="MultiCastCore vs blanket: time and cost vs Eve's budget",
        xlabel="adversary budget T",
        ylabel="slots / max node cost",
    )


def fig_adv_unjammed(bundle: RecordBundle) -> str:
    cells = _adv_cells(bundle)
    ns = np.array([c.n for c in cells], dtype=float)
    slots = [c.summary("slots").mean for c in cells]
    costs = [c.summary("max_cost").mean for c in cells]
    return svg_loglog(
        [
            Series("slots (unjammed)", list(ns), slots),
            Series(
                "6.10b additive shape (normalized)",
                list(ns),
                list(normalize_to(adv_time(0, ns, _ADV_ALPHA), np.array(slots))),
                dashed=True,
                markers=False,
            ),
            Series("max cost (unjammed)", list(ns), costs),
            Series(
                "6.10c additive shape (normalized)",
                list(ns),
                list(normalize_to(adv_cost(0, ns, _ADV_ALPHA), np.array(costs))),
                dashed=True,
                markers=False,
            ),
        ],
        title="MultiCastAdv, no jamming: the additive n-term (alpha=0.24)",
        xlabel="nodes n",
        ylabel="slots / max node cost",
    )


def fig_limited_adv(bundle: RecordBundle) -> str:
    series = []
    for n in _limited_adv_ns(bundle):
        cells = _limited_adv_series(bundle, n)
        C = np.array([c.channels for c in cells], dtype=float)
        slots = [c.summary("slots").mean for c in cells]
        series.append(Series(f"slots, n={n}", list(C), slots))
        # T = 0 isolates the additive n^{2+2α}/C^{2−2α} term: at the
        # committed budget the measured time is additive-term dominated
        # (see the ledger row), so that is the comparable shape
        shape = normalize_to(
            limited_adv_time(0, n, C, _ADV_ALPHA), np.array(slots)
        )
        series.append(
            Series(
                f"Thm 7.2 additive shape, n={n} (normalized)",
                list(C),
                list(shape),
                dashed=True,
                markers=False,
            )
        )
    return svg_loglog(
        series,
        title="MultiCastAdvC vs blackout: completion time vs channel cap (alpha=0.24)",
        xlabel="channel cap C",
        ylabel="slots to completion",
    )


#: Committed figure path (relative to the repo root) -> builder.
FIGURES: Dict[str, Callable[[RecordBundle], str]] = {
    "experiments/figures/channels.svg": fig_channels,
    "experiments/figures/scaling_n.svg": fig_scaling_n,
    "experiments/figures/budget.svg": fig_budget,
    "experiments/figures/core_scaling.svg": fig_core_scaling,
    "experiments/figures/adv_unjammed.svg": fig_adv_unjammed,
    "experiments/figures/limited_adv.svg": fig_limited_adv,
}


def render_figures(bundle: RecordBundle) -> Dict[str, str]:
    """All committed figures, keyed by repo-relative path."""
    return {path: fn(bundle) for path, fn in FIGURES.items()}
