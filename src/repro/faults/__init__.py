"""Seeded, deterministic fault injection for campaign chaos testing.

The package splits the chaos harness into data and machinery:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`: the schedule of worker
  kills, raising trials, block delays, torn shard tails, and corrupt rows,
  as JSON-friendly data keyed on stable trial keys and dispatch attempts
  (never wall clock or PIDs), so the same plan replays the same chaos.
* :mod:`~repro.faults.inject` — :class:`FaultInjector`: fires a plan at the
  pool's injection points, role-aware (worker-level faults never hit the
  parent), installed process-wide like the telemetry recorder and carried
  to pool workers via the ``REPRO_FAULT_PLAN`` environment variable.

The supervision layer (:mod:`repro.exp.supervisor`) is what these faults
exercise; the fault-invariance suite (``tests/faults/``) asserts that any
plan leaves the final store bit-identical (minus ``wall_time``) to a
fault-free run.  See DESIGN.md section 14.
"""

from repro.faults.inject import (
    FAULT_PLAN_ENV,
    FaultInjector,
    active,
    injector_from_env,
    install,
    plan_env,
)
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active",
    "injector_from_env",
    "install",
    "plan_env",
]
