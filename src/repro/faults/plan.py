"""Deterministic fault plans: the chaos schedule as data.

A :class:`FaultPlan` is a JSON-friendly list of :class:`FaultSpec` entries,
each naming a fault *kind*, a trial-key substring it targets, and how many
dispatch attempts it fires on.  Nothing in a plan depends on wall clock,
PIDs, or scheduling: a fault fires iff (kind, matched key, attempt number)
says so, and a block's attempt number is bumped deterministically by the
supervisor every time the block is re-dispatched.  Replaying the same plan
against the same campaign therefore injects the same faults at the same
points — in a unit test, in CI's chaos-smoke job, and on a laptop — which is
what lets the fault-invariance suite assert bit-identical stores
(DESIGN.md section 14).

Fault kinds
-----------
``kill_worker``
    The worker running a matching block SIGKILLs itself at block start —
    the pool breaks exactly as under a real OOM kill.
``raise_trial``
    Trial execution raises :class:`InjectedFault` before running a matching
    trial (a "poison" trial when ``times`` exceeds the retry budget).
``delay_block``
    The worker sleeps ``seconds`` at block start — a straggler for the
    supervisor's watchdog to re-dispatch around.
``torn_tail``
    After flushing a matching block, the worker appends half a JSON line to
    its shard — the torn tail a mid-write SIGKILL leaves behind.
``corrupt_row``
    A matching trial's shard row is re-serialized with a flipped field but
    a stale checksum — silent bit-rot for the merge reader to reject.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import List, Sequence

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "InjectedFault"]

#: Every fault kind a plan may schedule (see the module docstring).
FAULT_KINDS = ("kill_worker", "raise_trial", "delay_block", "torn_tail", "corrupt_row")


class InjectedFault(RuntimeError):
    """The exception a ``raise_trial`` fault raises inside trial execution."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on keys containing ``match`` for
    the first ``times`` dispatch attempts (``seconds`` is the
    ``delay_block`` sleep; ignored by other kinds)."""

    kind: str
    match: str
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {', '.join(FAULT_KINDS)})"
            )
        if not self.match:
            raise ValueError("fault match must be a non-empty trial-key substring")
        if self.times < 1:
            raise ValueError(f"fault times must be at least 1, got {self.times!r}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds!r}")


@dataclass
class FaultPlan:
    """A named, seeded set of :class:`FaultSpec` entries (JSON round-trip)."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0
    name: str = "plan"

    def __post_init__(self):
        self.faults = [
            f if isinstance(f, FaultSpec) else FaultSpec(**f) for f in self.faults
        ]

    def matching(self, kind: str, keys: Sequence[str]) -> List[FaultSpec]:
        """The plan's ``kind`` entries whose ``match`` hits any of ``keys``."""
        return [
            f
            for f in self.faults
            if f.kind == kind and any(f.match in key for key in keys)
        ]

    # -- JSON round-trip -----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls(**json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    @classmethod
    def generate(
        cls,
        seed: int,
        keys: Sequence[str],
        kinds: Sequence[str] = ("kill_worker", "raise_trial", "torn_tail"),
        *,
        per_kind: int = 1,
        raise_times: int = 2,
        delay_seconds: float = 0.5,
    ) -> "FaultPlan":
        """A seeded random plan over ``keys``: ``per_kind`` targets per kind.

        Target choice is a pure function of ``(seed, sorted(keys), kinds)``
        — the chaos-suite entry point for "some plan, any plan, but the same
        one every run".
        """
        rng = random.Random(seed)
        pool = sorted(set(keys))
        faults = []
        for kind in kinds:
            for key in rng.sample(pool, min(per_kind, len(pool))):
                faults.append(
                    FaultSpec(
                        kind=kind,
                        match=key,
                        times=raise_times if kind == "raise_trial" else 1,
                        seconds=delay_seconds if kind == "delay_block" else 0.0,
                    )
                )
        return cls(faults=faults, seed=seed, name=f"generated-{seed}")
