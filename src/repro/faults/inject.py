"""Runtime fault injection: fire a :class:`~repro.faults.plan.FaultPlan`
inside the campaign machinery.

A :class:`FaultInjector` is role-aware.  Process- and disk-level faults
(``kill_worker``, ``delay_block``, ``torn_tail``, ``corrupt_row``) model a
disrupted *worker* and fire only under ``role="worker"`` — the parent must
survive them, not commit suicide.  ``raise_trial`` models a buggy trial and
fires wherever the trial runs, including the parent-side quarantine bisect
(:mod:`repro.exp.supervisor`), so a poison trial stays poisonous all the way
down to its quarantine ledger entry.

The transport to pool workers is the :data:`FAULT_PLAN_ENV` environment
variable holding a plan-JSON path: environment variables survive both fork
and spawn, exactly like the ``REPRO_ZERO_WALL`` stamp
(:data:`repro.exp.pool.ZERO_WALL_ENV`).  ``repro sweep --fault-plan`` and
the :func:`plan_env` test helper both set it; ``_shard_worker_init``
installs a worker-role injector from it, ``run_campaign`` a parent-role one.

Injection is a no-op unless a plan is installed: every hook checks the
module-global :func:`active` injector, mirroring the telemetry recorder
(:mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro.faults.plan import FaultPlan, FaultSpec, InjectedFault

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "active",
    "install",
    "injector_from_env",
    "plan_env",
]

#: Path to a FaultPlan JSON file; set it to enable injection in the next
#: campaign (parent and workers alike).  The CLI flag ``--fault-plan`` is
#: sugar for exporting this.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Marker the torn_tail fault appends: recognizably half a JSON object.
_TORN_PREFIX = '{"key": "torn-tail-injected", "slots'


class FaultInjector:
    """Executes a :class:`FaultPlan` at the campaign's injection points.

    The decision helpers (:meth:`kill_due`, :meth:`delay_due`,
    :meth:`torn_tail`, :meth:`corrupt_line`) are pure functions of
    ``(plan, role, keys, attempt)`` so tests can assert the schedule without
    firing anything; :meth:`on_block_start` and :meth:`check_trials` are the
    hooks the pool actually calls.
    """

    def __init__(self, plan: FaultPlan, *, role: str = "parent"):
        if role not in ("parent", "worker"):
            raise ValueError(f"injector role must be parent or worker, got {role!r}")
        self.plan = plan
        self.role = role

    def _due(self, kind: str, keys: Sequence[str], attempt: int) -> List[FaultSpec]:
        return [f for f in self.plan.matching(kind, keys) if attempt < f.times]

    # -- pure decisions ------------------------------------------------------------
    def kill_due(self, keys: Sequence[str], attempt: int) -> bool:
        """Whether a ``kill_worker`` fault fires on this (block, attempt)."""
        return self.role == "worker" and bool(self._due("kill_worker", keys, attempt))

    def delay_due(self, keys: Sequence[str], attempt: int) -> float:
        """Seconds of injected block delay (0.0 when none is due)."""
        if self.role != "worker":
            return 0.0
        return sum(f.seconds for f in self._due("delay_block", keys, attempt))

    def torn_tail(self, keys: Sequence[str], attempt: int) -> Optional[str]:
        """The truncated line to append after a matching block, if due."""
        if self.role == "worker" and self._due("torn_tail", keys, attempt):
            return _TORN_PREFIX
        return None

    def corrupt_line(self, key: str, attempt: int, line: str) -> Optional[str]:
        """A bit-rotted replacement for ``line``, if due: one field flipped,
        checksum left stale — exactly what the hardened reader must catch."""
        if self.role != "worker" or not self._due("corrupt_row", [key], attempt):
            return None
        data = json.loads(line)
        data["slots"] = int(data.get("slots", 0)) + 1
        return json.dumps(data, sort_keys=True)

    # -- firing hooks --------------------------------------------------------------
    def on_block_start(self, keys: Sequence[str], attempt: int) -> None:
        """Worker-side block preamble: injected delay, then injected death."""
        delay = self.delay_due(keys, attempt)
        if delay:
            time.sleep(delay)
        if self.kill_due(keys, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def check_trials(self, keys: Sequence[str], attempt: int) -> None:
        """Raise :class:`InjectedFault` if a ``raise_trial`` fault is due on
        any of ``keys`` (fires in both roles — a buggy trial is buggy
        wherever it runs)."""
        for fault in self._due("raise_trial", keys, attempt):
            key = next(k for k in keys if fault.match in k)
            raise InjectedFault(
                f"injected raise_trial on {key} "
                f"(attempt {attempt}, fires {fault.times} time(s))"
            )


#: The installed injector (None = injection off), mirroring obs.recorder.
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, or None when injection is off."""
    return _ACTIVE


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install (or clear, with None) the process-wide injector; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    return previous


def injector_from_env(role: str) -> Optional[FaultInjector]:
    """Build an injector from :data:`FAULT_PLAN_ENV`, or None when unset."""
    path = os.environ.get(FAULT_PLAN_ENV)
    if not path:
        return None
    return FaultInjector(FaultPlan.load(path), role=role)


@contextmanager
def plan_env(plan: FaultPlan, directory: str) -> Iterator[str]:
    """Write ``plan`` under ``directory``, export :data:`FAULT_PLAN_ENV`,
    and install a parent-role injector for the duration — the one-liner the
    fault-invariance tests wrap campaign runs in.  Restores both the env
    var and the installed injector on exit."""
    path = os.path.join(directory, f"fault-plan-{plan.name}.json")
    plan.save(path)
    previous_env = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = path
    previous = install(FaultInjector(plan, role="parent"))
    try:
        yield path
    finally:
        install(previous)
        if previous_env is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous_env
