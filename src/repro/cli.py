"""Command-line interface: run broadcasts and small studies from the shell.

Examples
--------
Run one execution and print the result::

    python -m repro run --protocol multicast --n 64 \
        --jammer blanket --budget 2000000 --seed 7

Protocol x jammer gallery table::

    python -m repro gallery --n 64 --budget 1000000

Channel-scarcity sweep (Corollary 7.1's shape)::

    python -m repro channels --n 64 --budget 250000

The CLI wraps the same public API the examples use; it exists so ad-hoc
reproduction runs don't require writing a script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    MultiCast,
    MultiCastAdv,
    MultiCastAdvC,
    MultiCastC,
    MultiCastCore,
    PeriodicBurstJammer,
    RandomJammer,
    SweepJammer,
    run_broadcast,
)
from repro.analysis import render_table

__all__ = ["main", "build_parser", "make_protocol", "make_jammer"]

#: MultiCastAdv laptop-scale profile used by the CLI (see DESIGN.md 2.2).
ADV_KNOBS = dict(alpha=0.24, b=0.05, halt_noise_divisor=50.0, helper_wait=4.0)


def make_protocol(name: str, n: int, *, T: int = 0, C: Optional[int] = None):
    """Build a protocol object by CLI name."""
    name = name.lower()
    if name in ("core", "multicastcore"):
        return MultiCastCore(n=n, T=max(T, n))
    if name in ("multicast", "mc"):
        return MultiCast(n)
    if name in ("multicast_c", "mcc"):
        return MultiCastC(n, C if C is not None else max(1, n // 8))
    if name in ("adv", "multicastadv"):
        return MultiCastAdv(**ADV_KNOBS, max_epochs=32)
    if name in ("adv_c", "multicastadvc"):
        return MultiCastAdvC(C if C is not None else 8, **ADV_KNOBS, max_epochs=32)
    raise SystemExit(f"unknown protocol {name!r} (try: core, multicast, multicast_c, adv, adv_c)")


def make_jammer(name: str, budget: int, seed: int):
    """Build a jammer by CLI name (``none`` -> no adversary)."""
    name = name.lower()
    if name == "none" or budget == 0:
        return None
    table = {
        "blanket": lambda: BlanketJammer(budget, channels=0.9, placement="random", seed=seed),
        "blackout": lambda: BlanketJammer(budget, channels=1.0, seed=seed),
        "fractional": lambda: FractionalJammer(budget, 0.9, 0.9, seed=seed),
        "frontloaded": lambda: FrontLoadedJammer(budget),
        "bursts": lambda: PeriodicBurstJammer(budget, period=90, burst=60, channels=1.0, seed=seed),
        "sweep": lambda: SweepJammer(budget, width=8, seed=seed),
        "random": lambda: RandomJammer(budget, 0.5, seed=seed),
    }
    if name not in table:
        raise SystemExit(f"unknown jammer {name!r} (try: {', '.join(table)}, none)")
    return table[name]()


def _result_rows(result):
    return [
        ["success", result.success],
        ["slots", result.slots],
        ["disseminated by", result.dissemination_slot],
        ["max node cost", result.max_cost],
        ["mean node cost", round(result.mean_cost, 1)],
        ["Eve's spend", result.adversary_spend],
        ["periods", result.periods],
    ]


def cmd_run(args) -> int:
    proto = make_protocol(args.protocol, args.n, T=args.budget, C=args.channels)
    adv = make_jammer(args.jammer, args.budget, seed=args.seed + 1)
    result = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
    print(render_table(["metric", "value"], _result_rows(result), title=str(result.protocol)))
    return 0 if result.success else 1


def cmd_gallery(args) -> int:
    jammers = ["none", "blanket", "blackout", "fractional", "frontloaded", "bursts", "sweep", "random"]
    rows = []
    ok = True
    for name in jammers:
        proto = make_protocol(args.protocol, args.n, T=args.budget)
        adv = make_jammer(name, args.budget, seed=args.seed + 1)
        r = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
        ok &= r.success
        rows.append([name, "yes" if r.success else "NO", r.slots, r.adversary_spend, r.max_cost])
    print(
        render_table(
            ["jammer", "ok", "slots", "Eve spend", "max cost"],
            rows,
            title=f"{args.protocol} (n={args.n}) vs the gallery, budget {args.budget:,}",
        )
    )
    return 0 if ok else 1


def cmd_channels(args) -> int:
    rows = []
    ok = True
    C = 1
    while C <= args.n // 2:
        proto = MultiCastC(args.n, C)
        adv = make_jammer("blackout", args.budget, seed=args.seed + 1)
        r = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
        ok &= r.success
        rows.append([C, "yes" if r.success else "NO", r.slots, r.max_cost])
        C *= 2
    print(
        render_table(
            ["C", "ok", "slots", "max cost"],
            rows,
            title=f"MultiCast(C) sweep, n={args.n}, budget {args.budget:,} (Cor. 7.1: time ~ 1/C)",
        )
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-competitive multi-channel broadcast (Chen & Zheng, SPAA 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--n", type=int, default=64, help="number of nodes (node 0 = source)")
        p.add_argument("--budget", type=int, default=0, help="Eve's energy budget T")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-slots", type=int, default=200_000_000)

    p_run = sub.add_parser("run", help="one execution")
    common(p_run)
    p_run.add_argument("--protocol", default="multicast")
    p_run.add_argument("--jammer", default="blanket")
    p_run.add_argument("--channels", type=int, default=None, help="C for the (C) variants")
    p_run.set_defaults(fn=cmd_run)

    p_gal = sub.add_parser("gallery", help="one protocol vs every jammer")
    common(p_gal)
    p_gal.add_argument("--protocol", default="multicast")
    p_gal.set_defaults(fn=cmd_gallery)

    p_ch = sub.add_parser("channels", help="MultiCast(C) scarcity sweep")
    common(p_ch)
    p_ch.set_defaults(fn=cmd_channels)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
