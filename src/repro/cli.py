"""Command-line interface: run broadcasts and small studies from the shell.

Examples
--------
Run one execution and print the result::

    python -m repro run --protocol multicast --n 64 \
        --jammer blanket --budget 2000000 --seed 7

Protocol x jammer gallery table::

    python -m repro gallery --n 64 --budget 1000000

Channel-scarcity sweep (Corollary 7.1's shape)::

    python -m repro channels --n 64 --budget 250000

Oblivious vs. adaptive jammers on the arena runtime (section-8 probe)::

    python -m repro arena --protocol multicast --n 64 --budget 100000

Parallel Monte Carlo campaign (resumable; see EXPERIMENTS.md)::

    python -m repro sweep --trials 20 --workers 0 --store results.jsonl

Regenerate (or verify) the committed record — EXPERIMENTS.md tables,
CLAIMS.md, figures — from the stores::

    python -m repro report           # rewrite whatever drifted
    python -m repro report --check   # CI invariant: exit 1 on drift

The CLI wraps the same public API the examples use; it exists so ad-hoc
reproduction runs don't require writing a script.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import os
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Set

from repro import MultiCastC, run_broadcast
from repro.analysis import render_table
from repro.arena import run_broadcast_adaptive, supports_protocol
from repro.exp import (
    CampaignInterrupted,
    CampaignSpec,
    RecoveryLog,
    ResultStore,
    StoppingRule,
    StoreWriteError,
    UnknownNameError,
    aggregate,
    merge_shards,
    remaining_quarantined,
    run_campaign,
)
from repro.exp import registry

__all__ = ["main", "build_parser", "make_protocol", "make_jammer"]

#: MultiCastAdv laptop-scale profile used by the CLI (see DESIGN.md 2.2).
ADV_KNOBS = registry.ADV_KNOBS


def make_protocol(name: str, n: int, *, T: int = 0, C: Optional[int] = None):
    """Build a protocol object by CLI name (unknown names exit with choices)."""
    try:
        return registry.build_protocol(name, n, T=T, C=C)
    except UnknownNameError as exc:
        raise SystemExit(str(exc)) from None


def make_jammer(name: str, budget: int, seed: int, n: Optional[int] = None):
    """Build a jammer by CLI name (``none`` -> no adversary; unknown -> exit)."""
    try:
        return registry.build_jammer(name, budget, seed, n=n)
    except UnknownNameError as exc:
        raise SystemExit(str(exc)) from None


def _result_rows(result):
    return [
        ["success", result.success],
        ["slots", result.slots],
        ["disseminated by", result.dissemination_slot],
        ["max node cost", result.max_cost],
        ["mean node cost", round(result.mean_cost, 1)],
        ["Eve's spend", result.adversary_spend],
        ["periods", result.periods],
    ]


def cmd_run(args) -> int:
    proto = make_protocol(args.protocol, args.n, T=args.budget, C=args.channels)
    adv = make_jammer(args.jammer, args.budget, seed=args.seed + 1, n=args.n)
    result = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
    print(render_table(["metric", "value"], _result_rows(result), title=str(result.protocol)))
    return 0 if result.success else 1


def cmd_gallery(args) -> int:
    jammers = [
        "none", "blanket", "blackout", "fractional", "frontloaded", "bursts",
        "sweep", "random", "phase_targeted",
    ]
    rows = []
    ok = True
    for name in jammers:
        proto = make_protocol(args.protocol, args.n, T=args.budget)
        adv = make_jammer(name, args.budget, seed=args.seed + 1, n=args.n)
        r = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
        ok &= r.success
        rows.append([name, "yes" if r.success else "NO", r.slots, r.adversary_spend, r.max_cost])
    print(
        render_table(
            ["jammer", "ok", "slots", "Eve spend", "max cost"],
            rows,
            title=f"{args.protocol} (n={args.n}) vs the gallery, budget {args.budget:,}",
        )
    )
    return 0 if ok else 1


#: Default `repro arena` matchups: an unjammed control, an oblivious jammer
#: with the same budget, and the reactive ladder from harmless (one-slot
#: latency) to model-breaking (within-slot sniper).  MultiCastAdv works here
#: too but is minutes-per-trial — keep it out of default grids.
ARENA_JAMMERS = "none,random,trailing,reactive:2,sniper"


def cmd_arena(args) -> int:
    jammers = [j for j in args.jammers.split(",") if j]
    rows = []
    for name in jammers:
        proto = make_protocol(args.protocol, args.n, T=args.budget, C=args.channels)
        # pre-validate liftability so a genuine adapter bug still tracebacks
        # instead of masquerading as a usage error
        if not supports_protocol(proto):
            raise SystemExit(
                f"protocol {args.protocol!r} has no arena column adapter"
            )
        adv = make_jammer(name, args.budget, seed=args.seed + 1, n=args.n)
        try:
            r = run_broadcast_adaptive(
                proto,
                args.n,
                adversary=adv,
                seed=args.seed,
                max_slots=args.max_slots,
                backend=args.backend,
            )
        except ValueError as exc:
            # backend=window with a jammer that must slot-step (e.g. sniper)
            raise SystemExit(f"jammer {name!r}: {exc}")
        rows.append(
            [
                name,
                "yes" if r.success else "NO",
                r.slots,
                r.adversary_spend,
                r.max_cost,
                r.halted_uninformed,
                r.extras.get("backend", "?").replace("arena-", ""),
            ]
        )
    print(
        render_table(
            ["jammer", "ok", "slots", "Eve spend", "max cost", "bad halts", "backend"],
            rows,
            title=(
                f"{args.protocol} (n={args.n}) on the adaptive arena, "
                f"budget {args.budget:,} (section-8 probe)"
            ),
        )
    )
    # adaptive probes *expect* failures (that is the finding); always exit 0
    return 0


def cmd_channels(args) -> int:
    rows = []
    ok = True
    C = 1
    while C <= args.n // 2:
        proto = MultiCastC(args.n, C)
        adv = make_jammer("blackout", args.budget, seed=args.seed + 1)
        r = run_broadcast(proto, args.n, adversary=adv, seed=args.seed, max_slots=args.max_slots)
        ok &= r.success
        rows.append([C, "yes" if r.success else "NO", r.slots, r.max_cost])
        C *= 2
    print(
        render_table(
            ["C", "ok", "slots", "max cost"],
            rows,
            title=f"MultiCast(C) sweep, n={args.n}, budget {args.budget:,} (Cor. 7.1: time ~ 1/C)",
        )
    )
    return 0 if ok else 1


def _sweep_campaign(args) -> CampaignSpec:
    """Build the campaign grid from CLI flags (or load ``--spec`` JSON).

    Explicit flags override the loaded spec; ``replace()`` re-runs
    validation, so e.g. ``--trials 0`` cannot slip past ``__post_init__``.
    """
    defaults = dict(
        protocols=["core", "multicast", "multicast_c"],
        jammers=["blanket", "bursts", "sweep"],
        ns=[64],
        budget=100_000,
        trials=10,
    )
    try:
        overrides = {
            "protocols": None if args.protocols is None else [p for p in args.protocols.split(",") if p],
            "jammers": None if args.jammers is None else [j for j in args.jammers.split(",") if j],
            "ns": None if args.n is None else [int(x) for x in args.n.split(",") if x],
            "budget": args.budget,
            "trials": args.trials,
            "base_seed": args.seed,
            "channels": args.channels,
            "max_slots": args.max_slots,
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if args.ci_target is not None:
            overrides["ci_target"] = args.ci_target
            overrides["ci_metric"] = args.ci_metric
            if args.max_trials is not None:
                overrides["max_trials"] = args.max_trials
        if args.spec:
            return dataclasses.replace(CampaignSpec.load(args.spec), **overrides)
        return CampaignSpec(**{**defaults, **overrides})
    except UnknownNameError as exc:
        raise SystemExit(str(exc)) from None
    except OSError as exc:
        raise SystemExit(f"cannot read campaign spec: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad campaign spec: {exc}") from None


def _sweep_rows(cells):
    rows = []
    for c in cells:
        slots, cost, spend = c.summary("slots"), c.summary("max_cost"), c.summary("adversary_spend")
        ratio = c.competitiveness
        rows.append(
            [
                c.protocol,
                c.jammer,
                c.n,
                c.trials,
                f"{c.success_rate:.0%}",
                f"{slots.mean:.3g} ±{slots.ci95:.2g}",
                f"{cost.mean:.3g} ±{cost.ci95:.2g}",
                f"{spend.mean:.3g}",
                "inf" if ratio == float("inf") else f"{ratio:.4f}",
            ]
        )
    return rows


@contextlib.contextmanager
def _fault_plan_env(path: Optional[str]):
    """Validate a ``--fault-plan`` file and export it to the campaign (and
    its workers) through :data:`~repro.faults.FAULT_PLAN_ENV`, restoring the
    previous environment on exit.  A malformed plan is a usage error, caught
    before any trial runs."""
    if path is None:
        yield
        return
    from repro.faults import FAULT_PLAN_ENV, FaultPlan

    try:
        plan = FaultPlan.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read fault plan: {exc}") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"bad fault plan {path!r}: {exc}") from None
    print(
        f"fault injection: plan {plan.name!r} armed "
        f"({len(plan.faults)} fault(s), seed {plan.seed})",
        file=sys.stderr,
    )
    previous = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = os.path.abspath(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


def _campaign_keys(campaign: CampaignSpec) -> Set[str]:
    """Every trial key the campaign could own.  Adaptive campaigns expand to
    the per-cell cap: a quarantined trial must count against the sweep even
    when the stopping rule would have ended the cell earlier."""
    if campaign.adaptive:
        cap = campaign.resolved_max_trials()
        return {
            dataclasses.replace(template, trial=t).key()
            for template in campaign.cell_templates()
            for t in range(cap)
        }
    return {s.key() for s in campaign.trial_specs()}


def _fmt_duration(seconds: float) -> str:
    """Compact duration for progress lines: 47s, 3m09s, 1h02m."""
    seconds = max(0, int(round(seconds)))
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def cmd_sweep(args) -> int:
    campaign = _sweep_campaign(args)
    store = ResultStore(args.store)
    # fold in any shards a crashed sharded run left behind, so the resume
    # count below (and the skip-set inside run_campaign) sees them
    merged = merge_shards(store)
    if merged:
        print(
            f"recovered: {merged} record(s) merged from leftover shard files",
            file=sys.stderr,
        )
    # count only THIS campaign's stored trials: shared stores hold others'
    skipped = len({s.key() for s in campaign.trial_specs()} & store.completed_keys())
    if skipped:
        print(f"resuming: {skipped} stored trial(s) found in {args.store}", file=sys.stderr)

    if args.telemetry and not args.store:
        raise SystemExit("--telemetry needs --store (it shards alongside it)")

    # progress carries elapsed/ETA/throughput so a long campaign (minutes-
    # per-cell adv grids on one core) is never opaque between JSONL flushes;
    # the trial key names the cell, so each line locates the campaign's
    # position
    started = time.monotonic()

    def progress(done, total, record):
        if not args.quiet:
            elapsed = time.monotonic() - started
            eta = elapsed / done * (total - done) if done else 0.0
            rate = done / elapsed if elapsed > 0 else 0.0
            util = ""
            if args.telemetry and elapsed > 0:
                # merged worker aggregates land on the parent recorder as
                # blocks complete: kernel-busy seconds over wall x workers
                # is the live utilization figure
                from repro.obs.recorder import active as _obs_active

                tel = _obs_active()
                pool_width = args.workers or os.cpu_count() or 1
                if tel is not None and tel.timers:
                    busy = sum(cell[0] for cell in tel.timers.values())
                    util = f" | util {min(busy / (elapsed * pool_width), 1.0) * 100:.0f}%"
            print(
                f"[{done}/{total}] {record.key} | "
                f"{_fmt_duration(elapsed)} elapsed | eta {_fmt_duration(eta)} | "
                f"{rate:.1f} trials/s{util}",
                file=sys.stderr,
            )

    recovery = RecoveryLog()
    try:
        with _fault_plan_env(args.fault_plan), store:
            records = run_campaign(
                campaign,
                store,
                workers=args.workers,
                progress=progress,
                backend=args.backend,
                telemetry=args.telemetry,
                recovery=recovery,
            )
    except CampaignInterrupted as exc:
        print(
            f"interrupted after {exc.done}/{exc.total} pending trials; "
            "re-run the same command to resume",
            file=sys.stderr,
        )
        return 130
    except StoreWriteError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except BrokenProcessPool:
        # the supervisor respawns pools and degrades to serial before giving
        # up, so reaching here means the pool died outside its watch (e.g.
        # during startup); stored rows are still safe
        print(
            "a worker process died; completed trials are safe in the shard "
            "files — re-run the same command to resume",
            file=sys.stderr,
        )
        return 1
    cells = aggregate(records)
    print(
        render_table(
            ["protocol", "jammer", "n", "trials", "ok", "slots", "max cost", "Eve spend", "cost/T"],
            _sweep_rows(cells),
            title=(
                f"campaign {campaign.name!r}: {len(records)} trials, "
                f"budget {campaign.budget:,}, base seed {campaign.base_seed}"
            ),
        )
    )
    if campaign.adaptive:
        _print_stopping_table(campaign, store)
    if args.telemetry:
        _print_telemetry_summary(args.store)
    for line in recovery.summary_lines():
        print(f"recovery: {line}", file=sys.stderr)
    leftover = remaining_quarantined(store, _campaign_keys(campaign))
    if leftover:
        print(
            f"quarantine: {len(leftover)} trial(s) still unresolved "
            f"(see {args.store}.quarantine.jsonl); aggregates above exclude "
            "them — re-run the same command to retry",
            file=sys.stderr,
        )
        return 2
    return 0


def _print_telemetry_summary(store_path: str) -> None:
    """One post-run stderr line from the merged telemetry stream: worker
    throughput and utilization, plus the obs-report pointer."""
    from repro.obs import iter_telemetry, telemetry_path

    path = telemetry_path(store_path)
    try:
        events = list(iter_telemetry(path))
    except OSError:
        return
    heartbeats = [e for e in events if e["event"] == "heartbeat"]
    campaigns = [e for e in events if e["event"] == "campaign"]
    # trials/elapsed come from the campaign row itself, not summed heartbeats:
    # a resumed store carries the interrupted run's heartbeats too, and a
    # no-op resume (trials == 0) has no throughput worth printing
    if heartbeats and campaigns and int(campaigns[-1].get("trials", 0)) > 0:
        busy: dict = {}
        for hb in heartbeats:
            busy[hb["source"]] = max(
                busy.get(hb["source"], 0.0), float(hb.get("elapsed", 0.0))
            )
        c = campaigns[-1]
        trials = int(c.get("trials", 0))
        elapsed = float(c.get("elapsed", 0.0))
        workers = int(c.get("workers", 0)) or len(busy)
        rate = trials / elapsed if elapsed > 0 else 0.0
        # worker elapsed can overlap the parent's own shard merge slightly,
        # so clamp — >100% utilization would only confuse
        util = (
            ", worker utilization "
            f"{min(sum(busy.values()) / (elapsed * workers), 1.0) * 100:.0f}%"
            if elapsed > 0 and workers
            else ""
        )
        print(
            f"telemetry: {rate:.1f} trials/s across {workers} worker(s){util}",
            file=sys.stderr,
        )
    print(f"telemetry: report with `python -m repro obs {store_path}`", file=sys.stderr)


def cmd_obs(args) -> int:
    """Render a telemetry run report, or gate benchmarks (--check-bench)."""
    if args.check_bench:
        from repro.obs.bench import check_bench

        ok, lines = check_bench(args.check_bench, args.baseline)
        for line in lines:
            print(line)
        return 0 if ok else 1
    if args.baseline:
        raise SystemExit("--baseline only applies with --check-bench")
    if not args.store:
        raise SystemExit("need a store path (or --check-bench DIR)")
    from repro.obs import iter_telemetry, render_report, telemetry_path, write_figures

    path = telemetry_path(args.store)
    try:
        events = list(iter_telemetry(path))
    except OSError as exc:
        raise SystemExit(
            f"no telemetry stream at {path} (run the campaign with "
            f"--telemetry): {exc}"
        ) from None
    print(render_report(events), end="")
    if args.figures:
        written = write_figures(events, args.figures)
        for fig in written:
            print(f"wrote {fig}")
        if not written:
            print("no timeline-bearing events; figures skipped")
    return 0


def _print_stopping_table(campaign: CampaignSpec, store: ResultStore) -> None:
    """The per-cell stopping decisions of an adaptive campaign, as a table."""
    suffix = StoppingRule.of_campaign(campaign).suffix()
    stops = [r for r in store.stopping_records() if r.key.endswith(suffix)]
    cells = {t.key().rsplit("/", 1)[0] for t in campaign.cell_templates()}
    stops = [r for r in stops if r.key.rsplit("/stop", 1)[0] in cells]
    if not stops:
        return
    rows = [
        [
            r.protocol,
            r.jammer,
            r.n,
            r.trials,
            f"{r.achieved:.3g}",
            r.reason,
        ]
        for r in stops
    ]
    print(
        render_table(
            ["protocol", "jammer", "n", "trials", "achieved", "stopped on"],
            rows,
            title=(
                f"adaptive stopping: target {campaign.ci_target:g} on "
                f"{campaign.ci_metric}, waves of {campaign.trials}, "
                f"cap {campaign.resolved_max_trials()}"
            ),
        )
    )


def cmd_report(args) -> int:
    # imported lazily: the report layer pulls in every analysis/ledger module,
    # which run/gallery/sweep invocations never need
    from repro.report import MarkerError, ReportError, report

    try:
        return report(root=args.root, check=args.check)
    except (ReportError, MarkerError) as exc:
        raise SystemExit(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-competitive multi-channel broadcast (Chen & Zheng, SPAA 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--n", type=int, default=64, help="number of nodes (node 0 = source)")
        p.add_argument("--budget", type=int, default=0, help="Eve's energy budget T")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-slots", type=int, default=200_000_000)

    p_run = sub.add_parser("run", help="one execution")
    common(p_run)
    p_run.add_argument("--protocol", default="multicast")
    p_run.add_argument("--jammer", default="blanket")
    p_run.add_argument("--channels", type=int, default=None, help="C for the (C) variants")
    p_run.set_defaults(fn=cmd_run)

    p_gal = sub.add_parser("gallery", help="one protocol vs every jammer")
    common(p_gal)
    p_gal.add_argument("--protocol", default="multicast")
    p_gal.set_defaults(fn=cmd_gallery)

    p_ch = sub.add_parser("channels", help="MultiCast(C) scarcity sweep")
    common(p_ch)
    p_ch.set_defaults(fn=cmd_channels)

    p_ar = sub.add_parser(
        "arena", help="oblivious vs adaptive jammers on the arena runtime"
    )
    common(p_ar)
    p_ar.add_argument("--protocol", default="multicast")
    p_ar.add_argument("--channels", type=int, default=None, help="C for the (C) variants")
    p_ar.add_argument(
        "--jammers",
        default=ARENA_JAMMERS,
        help=f"comma-separated jammer names (default {ARENA_JAMMERS})",
    )
    p_ar.add_argument(
        "--backend",
        choices=("auto", "slot", "window"),
        default="auto",
        help="arena execution path: auto window-steps latency >= 1 jammers "
        "(bit-identical, ~10x faster), slot forces the per-slot oracle, "
        "window refuses jammers that need slot stepping",
    )
    p_ar.set_defaults(fn=cmd_arena)

    p_sw = sub.add_parser("sweep", help="parallel Monte Carlo campaign (resumable)")
    # grid flags default to None so they can tell "explicit" from "absent":
    # explicit flags override a --spec file; absent ones fall back to the
    # spec's values (or the documented defaults when there is no --spec)
    p_sw.add_argument(
        "--protocols",
        default=None,
        help="comma-separated protocol names (default core,multicast,multicast_c)",
    )
    p_sw.add_argument(
        "--jammers",
        default=None,
        help="comma-separated jammer names (default blanket,bursts,sweep)",
    )
    p_sw.add_argument("--n", default=None, help="comma-separated network sizes (default 64)")
    p_sw.add_argument(
        "--budget", type=int, default=None, help="Eve's energy budget T (default 100000)"
    )
    p_sw.add_argument("--trials", type=int, default=None, help="trials per cell (default 10)")
    p_sw.add_argument("--seed", type=int, default=None, help="campaign base seed (default 0)")
    p_sw.add_argument("--channels", type=int, default=None, help="C for the (C) variants")
    p_sw.add_argument("--max-slots", type=int, default=None)
    p_sw.add_argument(
        "--workers",
        type=int,
        default=0,
        help="0 = one per CPU; 1 = serial fallback; >1 = sharded lane-batched pool",
    )
    p_sw.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "batched", "scalar"),
        help="trial execution: lane-batched engine (auto/batched) or scalar loop",
    )
    p_sw.add_argument(
        "--ci-target",
        type=float,
        default=None,
        help="adaptive stopping: run seed waves per cell until the relative "
        "95%% CI half-width of --ci-metric reaches this (e.g. 0.05)",
    )
    p_sw.add_argument(
        "--ci-metric",
        default="slots",
        help="metric the --ci-target applies to (default slots)",
    )
    p_sw.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="per-cell seed cap under --ci-target (default 10x --trials)",
    )
    p_sw.add_argument(
        "--store", default=None, help="JSONL result store (enables resumption)"
    )
    p_sw.add_argument("--spec", default=None, help="load a CampaignSpec JSON file")
    p_sw.add_argument("--quiet", action="store_true", help="suppress per-trial progress")
    p_sw.add_argument(
        "--telemetry",
        action="store_true",
        help="record run telemetry to <store>.telemetry.jsonl (needs --store; "
        "trial rows are untouched — view with `repro obs <store>`)",
    )
    p_sw.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help="inject deterministic faults from this plan file (testing the "
        "supervision layer; see repro.faults)",
    )
    p_sw.set_defaults(fn=cmd_sweep)

    p_obs = sub.add_parser(
        "obs", help="telemetry run report / benchmark regression gate"
    )
    p_obs.add_argument(
        "store",
        nargs="?",
        default=None,
        help="trial store whose .telemetry.jsonl sidecar to report on",
    )
    p_obs.add_argument(
        "--figures",
        default=None,
        metavar="DIR",
        help="also write deterministic SVG timelines into DIR",
    )
    p_obs.add_argument(
        "--check-bench",
        default=None,
        metavar="DIR",
        help="validate the BENCH_*.json files in DIR against their recorded "
        "speedup floors (exit 1 on regression)",
    )
    p_obs.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help="with --check-bench: additionally gate DIR's fresh speedups "
        "against this directory's recorded floors (the CI regression gate)",
    )
    p_obs.set_defaults(fn=cmd_obs)

    p_rep = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md tables, CLAIMS.md and figures from the stores",
    )
    p_rep.add_argument(
        "--check",
        action="store_true",
        help="verify instead of write: exit 1 if any generated file drifted",
    )
    p_rep.add_argument(
        "--root", default=".", help="repository root holding EXPERIMENTS.md (default .)"
    )
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
