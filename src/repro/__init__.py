"""repro — Fast and Resource Competitive Broadcast in Multi-channel Radio Networks.

A full, from-scratch Python reproduction of Chen & Zheng (SPAA 2019,
arXiv:1904.06328): the synchronous multi-channel radio-network model with an
oblivious jamming adversary, the paper's five broadcast protocols
(``MultiCastCore``, ``MultiCast``, ``MultiCastAdv`` and their channel-limited
variants), a gallery of jamming strategies, classic baselines, and a parallel
Monte Carlo campaign engine (:mod:`repro.exp`, ``python -m repro sweep``)
that regenerates the paper's theorem-level claims with confidence intervals.
Trial batches run through a lane-batched execution engine
(:func:`run_broadcast_batch`, DESIGN.md section 6) that is bit-identical per
trial to the scalar path and several times faster on a single core.  The
adaptive-adversary arena (:mod:`repro.arena`, DESIGN.md section 7) probes the
paper's section-8 conjecture: reactive jammers (``sniper``, ``trailing``,
``reactive:<latency>``) run against every protocol on a vectorized
slot-stepped runtime via :func:`run_broadcast_adaptive`, and
:func:`run_broadcast` dispatches there automatically.

Quickstart::

    from repro import MultiCast, BlanketJammer, run_broadcast

    n = 64
    result = run_broadcast(
        MultiCast(n, a=0.02),
        n,
        adversary=BlanketJammer(budget=100_000, channels=0.5),
        seed=7,
    )
    print(result)                       # success, slots, max node cost, Eve's spend
    assert result.success
    assert result.max_cost < result.adversary_spend   # resource competitiveness

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.adversary import (
    Adversary,
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    NoJammer,
    ObliviousJammer,
    PeriodicBurstJammer,
    PhaseTargetedJammer,
    RandomJammer,
    ReactiveLatencyJammer,
    ReplayJammer,
    ScheduleJammer,
    SniperJammer,
    SweepJammer,
    TrailingJammer,
)
from repro.arena import ArenaNetwork, run_broadcast_adaptive
from repro.core import (
    BroadcastResult,
    MultiCast,
    MultiCastAdv,
    MultiCastAdvC,
    MultiCastC,
    MultiCastCore,
    multicast_adv_spans,
    multicast_core_spans,
    multicast_spans,
    phase_intervals,
    run_broadcast,
    run_broadcast_batch,
)
from repro.sim import BatchNetwork, RadioNetwork, RandomFabric, TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "ArenaNetwork",
    "BatchNetwork",
    "BlanketJammer",
    "BroadcastResult",
    "FractionalJammer",
    "FrontLoadedJammer",
    "MultiCast",
    "MultiCastAdv",
    "MultiCastAdvC",
    "MultiCastC",
    "MultiCastCore",
    "NoJammer",
    "ObliviousJammer",
    "PeriodicBurstJammer",
    "PhaseTargetedJammer",
    "RadioNetwork",
    "RandomFabric",
    "RandomJammer",
    "ReactiveLatencyJammer",
    "ReplayJammer",
    "ScheduleJammer",
    "SniperJammer",
    "SweepJammer",
    "TrailingJammer",
    "TraceRecorder",
    "multicast_adv_spans",
    "multicast_core_spans",
    "multicast_spans",
    "phase_intervals",
    "run_broadcast",
    "run_broadcast_adaptive",
    "run_broadcast_batch",
    "__version__",
]
