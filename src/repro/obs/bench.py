"""The perf-regression gate: validate ``BENCH_*.json`` files against their
recorded floors.

Every benchmark that measures a speedup records it through
``benchmarks/conftest.py``'s ``record_speedup`` helper in one schema::

    {"bench": "<module>", "schema": 1, "smoke": bool, "updated": ...,
     "results": {"<test>": {"speedups": {"<case>": {
         "baseline_s": ..., "fast_s": ..., "speedup": ..., "floor": ...
     }}, ...}}}

The ``floor`` is the loose scale-robust bound the bench itself asserts
(chosen so a loaded CI runner at smoke scale cannot flake); the committed
full-scale ``speedup`` is the acceptance figure.  ``repro obs
--check-bench DIR`` validates every file in DIR against its own floors;
adding ``--baseline DIR2`` additionally gates DIR's fresh speedups
against DIR2's floors — the CI regression gate (fresh smoke run vs the
committed record).
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["load_bench_files", "check_bench"]

SCHEMA_VERSION = 1


def load_bench_files(dirpath: str) -> Dict[str, dict]:
    """``BENCH_*.json`` files under ``dirpath``, keyed by bench name."""
    out: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(dirpath, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        name = data.get("bench") or os.path.basename(path)[len("BENCH_"):-len(".json")]
        out[name] = data
    return out


def _iter_speedups(data: dict):
    for test, result in sorted(data.get("results", {}).items()):
        if not isinstance(result, dict):
            continue
        for case, figures in sorted(result.get("speedups", {}).items()):
            yield test, case, figures


def check_bench(
    dirpath: str, baseline_dir: Optional[str] = None
) -> Tuple[bool, List[str]]:
    """Validate every bench file in ``dirpath``; returns (ok, report lines).

    Each recorded speedup must meet its own ``floor``.  With
    ``baseline_dir``, each fresh speedup must additionally meet the floor
    recorded for the same (bench, test, case) in the baseline — speedup
    floors are scale-robust, so a smoke-scale fresh run gates cleanly
    against the committed full-scale record.  Cases present in the
    baseline but absent from the fresh run fail the check (a silently
    dropped benchmark is a regression too).
    """
    lines: List[str] = []
    ok = True
    benches = load_bench_files(dirpath)
    if not benches:
        return False, [f"no BENCH_*.json files under {dirpath}"]
    baseline = load_bench_files(baseline_dir) if baseline_dir else {}

    for name, data in sorted(benches.items()):
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            ok = False
            lines.append(
                f"FAIL {name}: schema {schema!r} != {SCHEMA_VERSION} "
                f"(regenerate via benchmarks/conftest.py record_speedup)"
            )
            continue
        cases = list(_iter_speedups(data))
        if not cases:
            lines.append(f"  ok  {name}: no recorded speedups (shape-only bench)")
            continue
        for test, case, figures in cases:
            speedup = figures.get("speedup")
            floor = figures.get("floor")
            label = f"{name}::{test}::{case}"
            if speedup is None or floor is None:
                ok = False
                lines.append(f"FAIL {label}: missing speedup/floor fields")
                continue
            if speedup < floor:
                ok = False
                lines.append(f"FAIL {label}: speedup {speedup} < floor {floor}")
            else:
                lines.append(f"  ok  {label}: speedup {speedup} >= floor {floor}")

    for name, base in sorted(baseline.items()):
        fresh = benches.get(name)
        if fresh is None:
            ok = False
            lines.append(f"FAIL {name}: in baseline but missing from fresh run")
            continue
        fresh_cases = {
            (test, case): figures for test, case, figures in _iter_speedups(fresh)
        }
        for test, case, figures in _iter_speedups(base):
            floor = figures.get("floor")
            if floor is None:
                continue
            label = f"{name}::{test}::{case}"
            got = fresh_cases.get((test, case))
            if got is None:
                ok = False
                lines.append(f"FAIL {label}: case missing from fresh run")
                continue
            speedup = got.get("speedup")
            if speedup is None or speedup < floor:
                ok = False
                lines.append(
                    f"FAIL {label}: fresh speedup {speedup} < baseline floor {floor}"
                )
            else:
                lines.append(
                    f"  ok  {label}: fresh speedup {speedup} >= baseline floor {floor}"
                )
    lines.append("check-bench: " + ("PASS" if ok else "FAIL"))
    return ok, lines
