"""Render a telemetry stream into a run report: throughput table,
straggler/occupancy summary, and deterministic SVG timelines.

The input is the merged ``<store>.telemetry.jsonl`` event stream (see
DESIGN.md section 12 for the schema).  The text report is plain aligned
columns — the same no-dependency discipline as the rest of ``repro`` —
and the figures go through :mod:`repro.report.figures`, so their bytes
are a pure function of the event stream.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Sequence

from repro.report.figures import Series, svg_lines

__all__ = ["iter_telemetry", "render_report", "write_figures"]


def iter_telemetry(path: str) -> Iterator[dict]:
    """Yield telemetry events from a JSONL file, skipping undecodable
    lines (a crashed writer's truncated tail) like the trial-store reader."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and "event" in row:
                yield row


def _merge_counters(summaries: Sequence[dict]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for s in summaries:
        for k, v in s.get("counters", {}).items():
            out[k] = out.get(k, 0) + int(v)
    return out


def _merge_timers(summaries: Sequence[dict]) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for s in summaries:
        for k, v in s.get("timers", {}).items():
            cell = out.setdefault(k, {"seconds": 0.0, "count": 0})
            cell["seconds"] += float(v["seconds"])
            cell["count"] += int(v["count"])
    return out


def _merge_hists(summaries: Sequence[dict]) -> Dict[str, Dict[int, int]]:
    out: Dict[str, Dict[int, int]] = {}
    for s in summaries:
        for k, v in s.get("hists", {}).items():
            hist = out.setdefault(k, {})
            for bucket, count in v.items():
                b = int(bucket)
                hist[b] = hist.get(b, 0) + int(count)
    return out


def _hist_line(hist: Dict[int, int]) -> str:
    """Compact power-of-two histogram rendering: ``[2^k) count`` cells."""
    cells = []
    for b in sorted(hist):
        hi = 2 ** b
        lo = 0 if b == 0 else 2 ** (b - 1)
        label = "0" if b == 0 else (f"{lo}" if hi == lo * 2 and b == 1 else f"{lo}-{hi - 1}")
        cells.append(f"{label}:{hist[b]}")
    return "  ".join(cells)


def _table(rows: List[List[str]], header: List[str]) -> List[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return lines


def render_report(events: Sequence[dict]) -> str:
    """The ``repro obs <store>`` text report."""
    events = list(events)
    heartbeats = [e for e in events if e["event"] == "heartbeat"]
    summaries = [e for e in events if e["event"] == "summary"]
    waves = [e for e in events if e["event"] == "wave"]
    merges = [e for e in events if e["event"] == "shard_merge"]
    campaigns = [e for e in events if e["event"] == "campaign"]
    notes = [e for e in events if e["event"] == "fallback_notes"]

    counters = _merge_counters(summaries)
    timers = _merge_timers(summaries)
    hists = _merge_hists(summaries)

    lines: List[str] = ["== repro.obs run report =="]
    if not events:
        lines.append("(empty telemetry stream)")
        return "\n".join(lines) + "\n"

    # -- throughput table (per source, from heartbeats) ---------------------
    if heartbeats:
        per_source: Dict[str, dict] = {}
        for hb in heartbeats:
            cell = per_source.setdefault(
                hb["source"], {"trials": 0, "blocks": 0, "elapsed": 0.0}
            )
            cell["trials"] += int(hb.get("trials", 0))
            cell["blocks"] += 1
            cell["elapsed"] = max(cell["elapsed"], float(hb.get("elapsed", 0.0)))
        rows = []
        total_trials = 0
        for source in sorted(per_source):
            cell = per_source[source]
            total_trials += cell["trials"]
            rate = cell["trials"] / cell["elapsed"] if cell["elapsed"] > 0 else 0.0
            rows.append(
                [source, str(cell["trials"]), str(cell["blocks"]),
                 f"{cell['elapsed']:.2f}", f"{rate:.1f}"]
            )
        lines.append("")
        lines.append("-- throughput (per worker, from heartbeats) --")
        lines.extend(_table(rows, ["source", "trials", "blocks", "busy s", "trials/s"]))
        if campaigns:
            c = campaigns[-1]
            elapsed = float(c.get("elapsed", 0.0))
            rate = total_trials / elapsed if elapsed > 0 else 0.0
            util = ""
            busy = sum(v["elapsed"] for v in per_source.values())
            workers = int(c.get("workers", 0)) or len(per_source)
            if elapsed > 0 and workers:
                # worker elapsed can overlap the parent's shard merge — clamp
                frac = min(busy / (elapsed * workers), 1.0)
                util = f", worker utilization {frac * 100:.0f}%"
            lines.append(
                f"campaign: {total_trials} trials in {elapsed:.2f}s "
                f"({rate:.1f} trials/s across {workers} worker(s){util})"
            )

    # -- kernel summary (straggler / occupancy / passes) --------------------
    kernel_keys = [
        k
        for k in sorted(counters)
        if not k.startswith(("campaign.", "supervise.", "store."))
    ]
    if kernel_keys or timers or hists:
        lines.append("")
        lines.append("-- kernels --")
        for name in sorted(timers):
            t = timers[name]
            per = t["seconds"] / t["count"] * 1e3 if t["count"] else 0.0
            lines.append(
                f"{name}: {t['seconds']:.3f}s over {t['count']} passes "
                f"({per:.3f} ms/pass)"
            )
        for name in kernel_keys:
            lines.append(f"{name}: {counters[name]}")
        for name in sorted(hists):
            lines.append(f"{name} (pow2 buckets): {_hist_line(hists[name])}")
        saved = counters.get("window.slots_committed", 0) - counters.get(
            "window.adv_queries", 0
        )
        if counters.get("window.adv_queries"):
            lines.append(
                f"window stepping saved {saved} adversary queries vs slot "
                f"stepping ({counters['window.adv_queries']} window calls for "
                f"{counters.get('window.slots_committed', 0)} committed slots)"
            )
        prop = counters.get("window.slots_proposed", 0)
        comm = counters.get("window.slots_committed", 0)
        if prop:
            lines.append(
                f"window committed-prefix fraction: {comm / prop * 100:.1f}% "
                f"({comm}/{prop} speculative slots kept)"
            )

    # -- adaptive wave trajectory ------------------------------------------
    if waves:
        lines.append("")
        lines.append("-- adaptive waves (CI-width trajectory) --")
        rows = []
        for w in waves:
            widths = w.get("rel_ci", {})
            worst = max(widths.values()) if widths else float("nan")
            rows.append(
                [str(w.get("wave", "?")), str(w.get("cells_open", "?")),
                 str(w.get("scheduled", "?")),
                 f"{worst:.4f}" if widths else "n/a"]
            )
        lines.extend(_table(rows, ["wave", "open cells", "scheduled", "worst rel CI"]))

    # -- supervision: faults seen and recovery actions taken ----------------
    supervise_keys = [
        k
        for k in sorted(counters)
        if k.startswith(("supervise.", "store."))
    ]
    fault_events = [
        e
        for e in events
        if e["event"] in ("retry", "respawn", "straggler", "quarantine", "degrade")
    ]
    if supervise_keys or fault_events:
        lines.append("")
        lines.append("-- faults / recovery --")
        for name in supervise_keys:
            lines.append(f"{name}: {counters[name]}")
        for e in fault_events:
            kind = e["event"]
            if kind == "retry":
                lines.append(
                    f"retry: block {e.get('block', '?')} attempt "
                    f"{e.get('attempt', '?')} ({e.get('error', '?')})"
                )
            elif kind == "respawn":
                lines.append(
                    f"respawn: pool #{e.get('respawns', '?')} with "
                    f"{e.get('blocks_left', '?')} block(s) outstanding"
                )
            elif kind == "straggler":
                lines.append(
                    f"straggler: block {e.get('block', '?')} re-dispatched "
                    f"(attempt {e.get('attempt', '?')})"
                )
            elif kind == "quarantine":
                lines.append(
                    f"quarantine: {e.get('key', '?')} after "
                    f"{e.get('attempts', '?')} attempt(s) ({e.get('error', '?')})"
                )
            else:
                lines.append(
                    f"degrade: {e.get('blocks', '?')} block(s) finished "
                    f"in-process after repeated pool deaths"
                )

    # -- recovery + fallbacks ----------------------------------------------
    if merges:
        lines.append("")
        for m in merges:
            lines.append(
                f"shard-merge recovery: {m.get('records', '?')} record(s) "
                f"folded in at campaign open"
            )
    for note_event in notes:
        snapshot = note_event.get("notes", [])
        if snapshot:
            lines.append("")
            lines.append("-- fallback notes --")
            for info in snapshot:
                lines.append(
                    f"{info.get('protocol', '?')}: {info.get('reason', '?')} "
                    f"({info.get('lanes', 0)} lane(s), {info.get('passes', 0)} pass(es))"
                )
    return "\n".join(lines) + "\n"


def write_figures(events: Sequence[dict], outdir: str) -> List[str]:
    """Emit deterministic SVG timelines for the event stream; returns the
    list of files written.  Figures needing absent events are skipped."""
    events = list(events)
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []

    heartbeats = [e for e in events if e["event"] == "heartbeat"]
    if heartbeats:
        per_source: Dict[str, List[dict]] = {}
        for hb in heartbeats:
            per_source.setdefault(hb["source"], []).append(hb)
        series = []
        for source in sorted(per_source):
            hbs = sorted(per_source[source], key=lambda e: e["seq"])
            xs = [float(hb.get("elapsed", 0.0)) for hb in hbs]
            ys = [float(hb.get("trials_per_s", 0.0)) for hb in hbs]
            series.append(Series(label=source, x=xs, y=ys))
        path = os.path.join(outdir, "telemetry_throughput.svg")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                svg_lines(
                    series,
                    title="Worker throughput over time",
                    xlabel="elapsed (s)",
                    ylabel="trials/s",
                )
            )
        written.append(path)

    depth = [e for e in events if e["event"] == "queue_depth"]
    if depth:
        depth = sorted(depth, key=lambda e: e["seq"])
        path = os.path.join(outdir, "telemetry_queue_depth.svg")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                svg_lines(
                    [
                        Series(
                            label="pending blocks",
                            x=[float(e.get("elapsed", 0.0)) for e in depth],
                            y=[float(e.get("pending", 0)) for e in depth],
                        )
                    ],
                    title="Block queue depth over time",
                    xlabel="elapsed (s)",
                    ylabel="pending blocks",
                )
            )
        written.append(path)

    waves = [e for e in events if e["event"] == "wave"]
    wave_pts = [
        (int(w["wave"]), max(w["rel_ci"].values()))
        for w in waves
        if w.get("rel_ci")
    ]
    if wave_pts:
        wave_pts.sort()
        path = os.path.join(outdir, "telemetry_ci_trajectory.svg")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                svg_lines(
                    [
                        Series(
                            label="worst open-cell rel CI95",
                            x=[float(w) for w, _ in wave_pts],
                            y=[float(c) for _, c in wave_pts],
                        )
                    ],
                    title="Adaptive-wave CI-width trajectory",
                    xlabel="wave",
                    ylabel="relative CI95 half-width",
                )
            )
        written.append(path)
    return written
