"""``repro.obs`` — run telemetry across kernels, workers, and campaigns.

The observability layer answers "where does the compute go?" for the
sharded, lane-batched, window-stepped campaign machinery without ever
touching a trial row.  Three design rules, enforced by tests:

1. **No-op default.**  When no recorder is active every instrumentation
   site is a single module-global ``is None`` check (measured < 2% on the
   hot kernels by ``benchmarks/bench_obs.py``).  Production code never
   imports heavyweight telemetry machinery on the hot path.
2. **Never in trial rows.**  Telemetry writes to a side channel
   (``<store>.telemetry.jsonl``); the trial store is byte-identical with
   telemetry on and off (``tests/obs/test_determinism.py``).
3. **Sharded like trials.**  Workers append to
   ``<store>.telemetry.shard-<k>.jsonl``; the parent merges shards in
   worker-index order at campaign close (and recovers orphans at open),
   mirroring :mod:`repro.exp.shard`.

See DESIGN.md section 12 for the event schema and the overhead budget.
"""

from repro.obs.recorder import (
    Telemetry,
    active,
    collect_telemetry,
    telemetry_path,
)
from repro.obs.merge import (
    merge_telemetry_shards,
    telemetry_shard_path,
    telemetry_shard_paths,
)

_REPORT_NAMES = ("iter_telemetry", "render_report", "write_figures")
_BENCH_NAMES = ("check_bench", "load_bench_files")


def __getattr__(name):
    # report rendering pulls in repro.report (and through it the exp layer),
    # which itself imports the instrumented hot modules — lazy-load it so
    # `from repro.obs.recorder import active` stays cycle-free and cheap on
    # the hot path
    if name in _REPORT_NAMES:
        from repro.obs import report

        return getattr(report, name)
    if name in _BENCH_NAMES:
        from repro.obs import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Telemetry",
    "active",
    "collect_telemetry",
    "telemetry_path",
    "merge_telemetry_shards",
    "telemetry_shard_path",
    "telemetry_shard_paths",
    "iter_telemetry",
    "render_report",
    "write_figures",
    "check_bench",
    "load_bench_files",
]
