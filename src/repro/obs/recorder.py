"""The telemetry recorder: counters, timers, histograms, and a JSONL event
stream — behind a module-global that defaults to ``None``.

Instrumentation sites follow one idiom::

    from repro import obs

    tel = obs.active()
    if tel is not None:
        tel.count("batch.kernel_passes")

so the disabled cost is a function call plus an ``is None`` test (the
overhead bench pins it < 2% on the hot kernels).  Aggregates (counters /
timers / histograms) accumulate in memory and are flushed as a single
``summary`` event when the recorder closes; discrete events (heartbeats,
wave snapshots, shard-merge recoveries) stream to the sink as they happen
so a crashed worker still leaves its trace.

Timestamps deserve a note: event rows carry no wall-clock field by
default.  Durations (timers) are relative measurements and survive in the
summary; absolute times would break the byte-level determinism tests and
add nothing a throughput number doesn't already say.  Heartbeats carry an
explicit monotonic ``elapsed`` instead.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Telemetry",
    "active",
    "collect_telemetry",
    "telemetry_path",
]


def telemetry_path(store_path: str) -> str:
    """The telemetry side-channel for a trial store: ``<store>.telemetry.jsonl``."""
    return f"{store_path}.telemetry.jsonl"


class Telemetry:
    """One recorder = one event source (the parent process or one worker).

    ``source`` stamps every row (``"main"``, ``"worker-3"``, ...); ``seq``
    is a per-source monotonic sequence number so merged streams keep a
    deterministic total order per source even without timestamps.
    """

    def __init__(self, path: Optional[str] = None, *, source: str = "main"):
        self.source = source
        self.path = path
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, List[float]] = {}  # name -> [seconds, count]
        self.hists: Dict[str, Dict[int, int]] = {}  # name -> {bucket: count}
        self.t0 = time.perf_counter()  # heartbeat "elapsed" reference
        self._seq = 0
        self._fh = open(path, "a", encoding="utf-8") if path else None
        self._buffer: List[dict] = [] if path is None else None

    # -- aggregates ---------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(delta)

    def add_time(self, name: str, seconds: float, passes: int = 1) -> None:
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [float(seconds), int(passes)]
        else:
            cell[0] += float(seconds)
            cell[1] += int(passes)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def observe(self, name: str, value: int) -> None:
        """Histogram with power-of-two buckets: value v lands in bucket
        ``v.bit_length()`` (0 stays in bucket 0), so bucket k spans
        ``[2**(k-1), 2**k)``.  Cheap, bounded, and exact enough for
        window-width / occupancy distributions."""
        bucket = int(value).bit_length() if value > 0 else 0
        hist = self.hists.setdefault(name, {})
        hist[bucket] = hist.get(bucket, 0) + 1

    def take_aggregates(self) -> dict:
        """Snapshot-and-reset the aggregates — the worker -> parent
        transport (plain picklable dicts, like ``FallbackNotes.snapshot``).
        Workers ship their aggregates back with each block's future, so one
        parent summary holds the whole campaign and a killed worker loses at
        most its in-flight block — the trial rows' own crash contract."""
        snap = {
            "counters": dict(self.counters),
            "timers": {k: list(v) for k, v in self.timers.items()},
            "hists": {k: dict(v) for k, v in self.hists.items()},
        }
        self.counters = {}
        self.timers = {}
        self.hists = {}
        return snap

    def merge_aggregates(self, snap: dict) -> None:
        for name, delta in snap.get("counters", {}).items():
            self.count(name, delta)
        for name, (seconds, passes) in snap.get("timers", {}).items():
            self.add_time(name, seconds, passes)
        for name, hist in snap.get("hists", {}).items():
            mine = self.hists.setdefault(name, {})
            for bucket, count in hist.items():
                bucket = int(bucket)
                mine[bucket] = mine.get(bucket, 0) + int(count)

    # -- event stream -------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        row = {"event": event, "source": self.source, "seq": self._seq}
        row.update(fields)
        self._seq += 1
        if self._fh is not None:
            self._fh.write(json.dumps(row, sort_keys=True) + "\n")
            self._fh.flush()
        else:
            self._buffer.append(row)

    def heartbeat(self, **fields) -> None:
        """Emit a ``heartbeat`` event stamped with this source's monotonic
        ``elapsed`` (seconds since the recorder started)."""
        self.emit(
            "heartbeat",
            elapsed=round(time.perf_counter() - self.t0, 6),
            **fields,
        )

    # -- lifecycle ----------------------------------------------------------

    def emit_summary(self) -> None:
        """Flush the aggregates as one ``summary`` event."""
        self.emit(
            "summary",
            counters=dict(sorted(self.counters.items())),
            timers={
                k: {"seconds": round(v[0], 6), "count": v[1]}
                for k, v in sorted(self.timers.items())
            },
            hists={
                k: {str(b): c for b, c in sorted(v.items())}
                for k, v in sorted(self.hists.items())
            },
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def rows(self) -> List[dict]:
        """Buffered rows (only when constructed without a path — tests)."""
        return list(self._buffer or [])


#: The active recorder.  ``None`` (the default) means telemetry is off and
#: every instrumentation site is a single ``is None`` check.  Workers MUST
#: reset this after fork (see ``exp/pool.py``) — an inherited parent
#: recorder would mean two processes writing one file handle.
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently-installed recorder, or ``None`` when telemetry is off."""
    return _ACTIVE


def _install(tel: Optional[Telemetry]) -> Optional[Telemetry]:
    """Swap the active recorder; returns the previous one.  Internal — use
    :func:`collect_telemetry` unless you are worker-init code."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tel
    return prev


@contextmanager
def collect_telemetry(
    path: Optional[str] = None, *, source: str = "main"
) -> Iterator[Telemetry]:
    """Install a recorder for the duration of the block.

    On exit the aggregates are flushed as a ``summary`` event and the sink
    is closed.  Nesting replaces the active recorder (restored on exit),
    matching the ``collect_fallback_notes`` discipline in ``core/batch.py``.
    """
    tel = Telemetry(path, source=source)
    prev = _install(tel)
    try:
        yield tel
    finally:
        try:
            tel.emit_summary()
            tel.close()
        finally:
            _install(prev)
