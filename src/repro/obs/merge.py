"""Telemetry shard files and their merge step — ``exp/shard.py``'s sibling.

Worker ``k`` of a sharded campaign appends its telemetry events to
``<store>.telemetry.shard-<k>.jsonl``; only the parent ever writes the
merged ``<store>.telemetry.jsonl``.  Unlike trial shards there is no
dedup-by-key step: telemetry events are observations, not idempotent
facts, so the merge simply concatenates shards in worker-index order
(each shard is internally ordered by its ``seq`` field).  The
worker-index ordering makes the merged stream deterministic for a fixed
set of shard files regardless of OS directory order.

Orphaned shards from a crashed run are folded in by the next campaign
against the same store, exactly like trial-shard recovery.
"""

from __future__ import annotations

import glob
import json
import os
import re
from typing import List

from repro.obs.recorder import telemetry_path

__all__ = [
    "merge_telemetry_shards",
    "telemetry_shard_path",
    "telemetry_shard_paths",
]

_SHARD_SUFFIX = re.compile(r"\.telemetry\.shard-(\d+)\.jsonl$")


def telemetry_shard_path(store_path: str, worker: int) -> str:
    """The telemetry shard worker ``worker`` owns for ``store_path``."""
    return f"{store_path}.telemetry.shard-{worker}.jsonl"


def telemetry_shard_paths(store_path: str) -> List[str]:
    """Existing telemetry shards of a store, in worker order."""
    found = []
    pattern = f"{glob.escape(store_path)}.telemetry.shard-*.jsonl"
    for path in glob.glob(pattern):
        match = _SHARD_SUFFIX.search(path)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def merge_telemetry_shards(store_path: str) -> int:
    """Append every telemetry shard's events to ``<store>.telemetry.jsonl``
    in worker-index order, then delete the shard files.  Undecodable lines
    (a worker killed mid-write) are dropped, matching the trial-store
    reader's tolerance.  Returns the number of events merged in.
    """
    paths = telemetry_shard_paths(store_path)
    if not paths:
        return 0
    merged = 0
    with open(telemetry_path(store_path), "a", encoding="utf-8") as out:
        for path in paths:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    out.write(line + "\n")
                    merged += 1
    for path in paths:
        os.remove(path)
    return merged
